#include "fuzz/oracles.h"

#include "driver/driver_lib.h"
#include "service/client.h"
#include "support/fault_injection.h"

#include <chrono>

namespace cash {
namespace fuzz {

namespace {

/** Engine-agnostic view of one pipeline run (in-process or socket). */
struct Observed
{
    std::string label;
    bool ok = false;          ///< Transport/fatal layer succeeded.
    bool transport = false;   ///< Error is transport, not compile.
    std::string error;        ///< Transport or fatal message.
    int exitCode = 0;
    int64_t verifierDiags = 0;
    int64_t checkerErrors = 0;
    bool ranAnalysis = false;
    bool ranSim = false;
    std::string outcome;      ///< simOutcomeName spelling.
    int64_t returnValue = 0;
    int64_t firings = -1;     ///< -1 = not reported.
};

int64_t
nowUs()
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** The per-case simulation spec: entry arg varies with the seed. */
std::string
runSpecFor(uint64_t seed)
{
    return "run(" + std::to_string(seed % 17) + ")";
}

/** One compile+sim target of the differential matrix. */
struct TargetCase
{
    std::string label;
    TargetSpec spec;
    bool analyze = false;
};

Status
buildMatrix(const SoakConfig& cfg, std::vector<TargetCase>* out)
{
    TargetCase base;
    base.spec.mem = "real2";
    base.spec.engine = "macro";

    TargetCase o0 = base;
    o0.label = "O0-macro";
    o0.spec.level = OptLevel::None;
    out->push_back(o0);

    TargetCase o3 = base;
    o3.label = "O3-macro";
    o3.spec.level = OptLevel::Full;
    o3.analyze = true;  // Oracle B reads this target's findings.
    out->push_back(o3);

    TargetCase ev = o3;
    ev.label = "O3-event";
    ev.spec.engine = "event";
    ev.analyze = false;
    out->push_back(ev);

    // Pruning-on vs. pruning-off differential: the interprocedural
    // token pruning (default-on at Full) must never change results.
    TargetCase noipo = o3;
    noipo.label = "O3-noipo";
    noipo.spec.interproc = false;
    noipo.analyze = false;
    out->push_back(noipo);

    if (!cfg.fabric.empty()) {
        TargetCase fb = o3;
        fb.label = "O3-fabric";
        fb.analyze = false;
        Status st = fb.spec.setField("fabric", cfg.fabric);
        if (!st)
            return st;
        out->push_back(fb);
    }
    return Status::ok();
}

DriverRequest
baseRequest(const std::string& source, const SoakConfig& cfg,
            const std::string& runSpec)
{
    DriverRequest req;
    req.source = source;
    req.jobs = 1;
    req.runSpec = runSpec;
    req.maxEvents = cfg.maxEvents;
    return req;
}

Observed
observeReply(const std::string& label, const DriverReply& rep)
{
    Observed o;
    o.label = label;
    o.ok = rep.fatal.empty();
    o.error = rep.fatal;
    o.exitCode = rep.exitCode;
    o.verifierDiags = static_cast<int64_t>(rep.diagnostics.size());
    o.checkerErrors = rep.analysisErrors;
    o.ranAnalysis = rep.ranAnalysis;
    o.ranSim = rep.ranSim;
    if (rep.ranSim) {
        o.outcome = simOutcomeName(rep.simOutcome);
        o.returnValue = static_cast<int64_t>(rep.returnValue);
        o.firings = rep.simStats.get("sim.firings");
    }
    return o;
}

Observed
runInProcess(const std::string& source, const SoakConfig& cfg,
             const TargetCase& t, const std::string& runSpec,
             CaseReport* rc)
{
    DriverRequest req = baseRequest(source, cfg, runSpec);
    req.target = t.spec;
    req.analyze = t.analyze;
    int64_t t0 = nowUs();
    DriverReply rep = runDriverRequest(req);
    rc->latenciesUs.push_back(nowUs() - t0);
    rc->runs++;
    return observeReply(t.label, rep);
}

Observed
runViaSocket(ServiceClient* client, const std::string& source,
             const SoakConfig& cfg, const TargetCase& t,
             const std::string& runSpec, CaseReport* rc,
             std::string* bodyDump, bool* cached)
{
    Observed o;
    o.label = t.label;

    Json options = Json::object();
    options.set("target", Json::string(t.spec.str()));
    options.set("run", Json::string(runSpec));
    options.set("max_events",
                Json::number(static_cast<int64_t>(cfg.maxEvents)));
    if (t.analyze)
        options.set("analyze", Json::boolean(true));
    Json req = makeCompileRequest("simulate", source, std::move(options));

    Json resp;
    int64_t t0 = nowUs();
    Status st = client->call(std::move(req), &resp);
    rc->latenciesUs.push_back(nowUs() - t0);
    rc->runs++;
    if (!st) {
        o.transport = true;
        o.error = "service call failed: " + st.message();
        return o;
    }
    if (!resp.getBool("ok")) {
        const Json* err = resp.get("error");
        o.transport = true;
        o.error = "service error: " +
                  (err ? err->getString("message") : resp.dump());
        return o;
    }
    const Json* body = resp.get("body");
    if (!body) {
        o.transport = true;
        o.error = "service response without body";
        return o;
    }
    if (bodyDump)
        *bodyDump = body->dump();
    if (cached)
        *cached = resp.getBool("cached");

    o.ok = body->get("fatal") == nullptr;
    o.error = body->getString("fatal");
    o.exitCode = static_cast<int>(body->getInt("exit"));
    if (const Json* stats = body->get("stats")) {
        if (const Json* diags = stats->get("diagnostics"))
            o.verifierDiags =
                static_cast<int64_t>(diags->items().size());
        if (const Json* sim = stats->get("sim"))
            o.firings = sim->getInt("sim.firings", -1);
    }
    if (const Json* analysis = body->get("analysis")) {
        o.ranAnalysis = true;
        o.checkerErrors = analysis->getInt("errors");
    }
    if (const Json* sim = body->get("sim")) {
        o.ranSim = true;
        o.outcome = sim->getString("outcome");
        o.returnValue = sim->getInt("return");
    }
    return o;
}

void
flag(CaseReport* rc, const std::string& category,
     const std::string& detail)
{
    if (rc->violation())
        return; // first violation names the case
    rc->category = category;
    rc->detail = detail;
}

/** Oracles A and B over the per-target observations. */
void
judge(CaseReport* rc, const std::vector<Observed>& obs)
{
    for (const Observed& o : obs) {
        if (!o.ok) {
            flag(rc, "frontend-reject", o.label + ": " + o.error);
            return;
        }
        rc->outcomes.push_back(o.label + "=" +
                               (o.ranSim ? o.outcome : "none"));
    }

    // Oracle B: both soundness judges clean on a clean program.
    for (const Observed& o : obs) {
        if (o.verifierDiags > 0)
            flag(rc, "oracle-b:verifier",
                 o.label + ": structural verifier reported " +
                     std::to_string(o.verifierDiags) +
                     " pass failure(s) on a generated program");
        if (o.ranAnalysis && o.checkerErrors > 0)
            flag(rc, "oracle-b:checker",
                 o.label + ": ordering checker reported " +
                     std::to_string(o.checkerErrors) +
                     " error finding(s) on a generated program");
    }
    if (rc->violation())
        return;

    for (const Observed& o : obs) {
        if (o.exitCode != 0) {
            flag(rc, "compile-exit",
                 o.label + ": exit " + std::to_string(o.exitCode) +
                     " on a generated program");
            return;
        }
    }

    // Oracle A: engine/level/fabric agreement on semantics.
    for (const Observed& o : obs) {
        if (o.ranSim &&
            (o.outcome == "event_limit" || o.outcome == "timeout")) {
            rc->inconclusive = true;
            return; // budgets are engine-specific; A is meaningless
        }
    }
    const Observed* first = nullptr;
    for (const Observed& o : obs) {
        if (!o.ranSim)
            continue;
        if (!first) {
            first = &o;
            continue;
        }
        if (o.outcome != first->outcome) {
            flag(rc, "oracle-a:outcome",
                 first->label + "=" + first->outcome + " but " +
                     o.label + "=" + o.outcome);
            return;
        }
    }
    if (first && first->outcome != "ok") {
        flag(rc, "oracle-a:" + first->outcome,
             "every target reports '" + first->outcome +
                 "' on a terminating generated program");
        return;
    }
    for (const Observed& o : obs) {
        if (!o.ranSim || &o == first)
            continue;
        if (o.returnValue != first->returnValue) {
            flag(rc, "oracle-a:return",
                 first->label + " returned " +
                     std::to_string(first->returnValue) + " but " +
                     o.label + " returned " +
                     std::to_string(o.returnValue));
            return;
        }
    }

    // The macro exactness contract: same level, same firings.
    const Observed* macro3 = nullptr;
    const Observed* event3 = nullptr;
    for (const Observed& o : obs) {
        if (o.label == "O3-macro")
            macro3 = &o;
        if (o.label == "O3-event")
            event3 = &o;
    }
    if (macro3 && event3 && macro3->firings >= 0 &&
        event3->firings >= 0 && macro3->firings != event3->firings) {
        flag(rc, "oracle-a:firings",
             "O3 macro fired " + std::to_string(macro3->firings) +
                 " ops but event fired " +
                 std::to_string(event3->firings));
    }
}

/** Oracle C (in-process): -j1 vs -jN byte identity. */
void
judgeJobs(const std::string& source, const SoakConfig& cfg,
          const std::string& runSpec, CaseReport* rc)
{
    DriverRequest req = baseRequest(source, cfg, runSpec);
    req.target.level = OptLevel::Full;
    req.wantGraphText = true;
    req.wantDot = true;

    StatsJsonMeta meta;
    meta.file = "soak";
    meta.run = runSpec;
    meta.mem = req.target.mem;
    meta.level = req.target.level;

    std::string docs[2], dots[2], graphs[2];
    const int jobs[2] = {1, cfg.jobsHigh};
    for (int i = 0; i < 2; ++i) {
        req.jobs = jobs[i];
        int64_t t0 = nowUs();
        DriverReply rep = runDriverRequest(req);
        rc->latenciesUs.push_back(nowUs() - t0);
        rc->runs++;
        if (!rep.fatal.empty()) {
            flag(rc, "frontend-reject", "jobs run: " + rep.fatal);
            return;
        }
        docs[i] = statsJsonDocument(rep, meta, /*deterministic=*/true);
        dots[i] = rep.dot;
        graphs[i] = rep.graphText;
    }
    if (docs[0] != docs[1])
        flag(rc, "oracle-c:stats",
             "-j1 and -j" + std::to_string(cfg.jobsHigh) +
                 " deterministic stats documents differ");
    else if (graphs[0] != graphs[1])
        flag(rc, "oracle-c:graph",
             "-j1 and -j" + std::to_string(cfg.jobsHigh) +
                 " graph dumps differ");
    else if (dots[0] != dots[1])
        flag(rc, "oracle-c:dot",
             "-j1 and -j" + std::to_string(cfg.jobsHigh) +
                 " DOT renderings differ");
}

/**
 * Oracle C (via socket): the service pins jobs=1, so determinism is
 * judged by replaying the identical request — the replay must be a
 * cache hit with a byte-identical body.
 */
void
judgeReplay(ServiceClient* client, const std::string& source,
            const SoakConfig& cfg, const std::string& runSpec,
            CaseReport* rc)
{
    TargetCase t;
    t.label = "replay";
    t.spec.level = OptLevel::Full;
    std::string body0, body1;
    bool cached0 = false, cached1 = false;
    Observed a = runViaSocket(client, source, cfg, t, runSpec, rc,
                              &body0, &cached0);
    if (!a.error.empty()) {
        flag(rc, "service-error", a.error);
        return;
    }
    Observed b = runViaSocket(client, source, cfg, t, runSpec, rc,
                              &body1, &cached1);
    if (!b.error.empty()) {
        flag(rc, "service-error", b.error);
        return;
    }
    if (body0 != body1)
        flag(rc, "oracle-c:replay",
             "replayed request returned a different body");
    else if (!cached1)
        flag(rc, "oracle-c:cache",
             "replayed request missed the result cache");
}

/** Canary mode: injected corruption must trip the checker oracle. */
void
runCanary(const std::string& source, const SoakConfig&,
          CaseReport* rc)
{
    // Mirror the CI differential proof (cli.analyze.inject): a short
    // verify-off pipeline so the corruption survives to analysis,
    // where only the independent §4 checker can catch it.
    FaultPlan plan = FaultPlan::parse(
        "graph.corrupt-token:pass=dead_code,round=1");

    DriverRequest req;
    req.source = source;
    req.jobs = 1;
    req.passNames = {"dead_code"};
    req.verify = false;
    req.analyze = true;
    req.faults = &plan;

    int64_t t0 = nowUs();
    DriverReply rep = runDriverRequest(req);
    rc->latenciesUs.push_back(nowUs() - t0);
    rc->runs++;
    if (!rep.fatal.empty()) {
        flag(rc, "frontend-reject", "canary: " + rep.fatal);
        return;
    }
    rc->canaryDetected = rep.analysisErrors > 0;
    if (!rc->canaryDetected)
        flag(rc, "canary-missed",
             "graph.corrupt-token injected but the ordering checker "
             "reported no error finding");
}

} // namespace

CaseReport
runCaseOnSource(const std::string& source, uint64_t seed,
                const SoakConfig& cfg)
{
    CaseReport rc;
    rc.seed = seed;
    const std::string runSpec = runSpecFor(seed);

    if (cfg.canary) {
        runCanary(source, cfg, &rc);
        return rc;
    }

    std::vector<TargetCase> matrix;
    Status st = buildMatrix(cfg, &matrix);
    if (!st) {
        flag(&rc, "config-error", st.message());
        return rc;
    }

    if (!cfg.viaSocket.empty()) {
        ServiceClient client;
        st = client.connect(cfg.viaSocket);
        if (!st) {
            flag(&rc, "service-error",
                 "connect " + cfg.viaSocket + ": " + st.message());
            return rc;
        }
        std::vector<Observed> obs;
        for (const TargetCase& t : matrix)
            obs.push_back(runViaSocket(&client, source, cfg, t,
                                       runSpec, &rc, nullptr,
                                       nullptr));
        for (const Observed& o : obs) {
            if (o.transport) {
                flag(&rc, "service-error", o.label + ": " + o.error);
                return rc;
            }
        }
        judge(&rc, obs);
        if (cfg.checkJobs && !rc.violation() && !rc.inconclusive)
            judgeReplay(&client, source, cfg, runSpec, &rc);
        return rc;
    }

    std::vector<Observed> obs;
    for (const TargetCase& t : matrix)
        obs.push_back(runInProcess(source, cfg, t, runSpec, &rc));
    judge(&rc, obs);
    if (cfg.checkJobs && !rc.violation() && !rc.inconclusive)
        judgeJobs(source, cfg, runSpec, &rc);
    return rc;
}

CaseReport
runCase(uint64_t seed, const SoakConfig& cfg)
{
    GenProgram prog =
        generateProgram(seed, GenProfile::byName(cfg.profile));
    CaseReport rc = runCaseOnSource(prog.render(), seed, cfg);
    rc.functions = prog.functionCount();
    return rc;
}

} // namespace fuzz
} // namespace cash
