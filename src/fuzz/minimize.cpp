#include "fuzz/minimize.h"

#include <algorithm>
#include <utility>

namespace cash {
namespace fuzz {

namespace {

/**
 * Pre-order walk over every statement position in @p vec and its
 * nested bodies.  @p f(vec, i) may mutate vec *only* if it returns
 * true, which aborts the walk before any invalidated index is used.
 */
template <typename F>
bool
walkStmtVecs(std::vector<GenStmt>& vec, F&& f)
{
    for (size_t i = 0; i < vec.size(); ++i) {
        if (f(vec, i))
            return true;
        if (walkStmtVecs(vec[i].body, f))
            return true;
        if (walkStmtVecs(vec[i].elseBody, f))
            return true;
    }
    return false;
}

template <typename F>
bool
walkExpr(GenExpr& e, F&& f)
{
    if (f(e))
        return true;
    for (GenExpr& k : e.kids)
        if (walkExpr(k, f))
            return true;
    return false;
}

template <typename F>
bool
walkStmtExprs(std::vector<GenStmt>& vec, F&& f)
{
    for (GenStmt& s : vec) {
        if (walkExpr(s.a, f))
            return true;
        if (walkExpr(s.b, f))
            return true;
        if (walkStmtExprs(s.body, f))
            return true;
        if (walkStmtExprs(s.elseBody, f))
            return true;
    }
    return false;
}

bool
isBlockStmt(const GenStmt& s)
{
    return s.k == GenStmt::K::If || s.k == GenStmt::K::For ||
           s.k == GenStmt::K::While;
}

/** Replace every call to @p name, anywhere in @p prog, with `1`. */
void
stubCalls(GenProgram* prog, const std::string& name)
{
    for (GenFunc& f : prog->funcs) {
        walkStmtExprs(f.stmts, [&](GenExpr& e) {
            if (e.k == GenExpr::K::Call && e.name == name)
                e = GenExpr::lit(1);
            return false; // never stop; visit every node
        });
    }
}

} // namespace

int64_t
countSites(const GenProgram& prog, ReduceKind kind)
{
    auto& funcs = const_cast<GenProgram&>(prog).funcs;
    int64_t n = 0;
    switch (kind) {
      case ReduceKind::DropFunc:
        return std::max<int64_t>(
            0, static_cast<int64_t>(funcs.size()) - 1);
      case ReduceKind::DropStmt:
        for (GenFunc& f : funcs)
            walkStmtVecs(f.stmts, [&](std::vector<GenStmt>&, size_t) {
                ++n;
                return false;
            });
        return n;
      case ReduceKind::UnwrapBlock:
        for (GenFunc& f : funcs)
            walkStmtVecs(f.stmts,
                         [&](std::vector<GenStmt>& vec, size_t i) {
                             if (isBlockStmt(vec[i]))
                                 ++n;
                             return false;
                         });
        return n;
      case ReduceKind::ExprToChild:
        for (GenFunc& f : funcs)
            walkStmtExprs(f.stmts, [&](GenExpr& e) {
                if (!e.kids.empty())
                    ++n;
                return false;
            });
        return n;
      case ReduceKind::ExprToLit:
        for (GenFunc& f : funcs)
            walkStmtExprs(f.stmts, [&](GenExpr& e) {
                if (e.k != GenExpr::K::Lit)
                    ++n;
                return false;
            });
        return n;
      case ReduceKind::ShrinkTrips:
        for (GenFunc& f : funcs)
            walkStmtVecs(f.stmts,
                         [&](std::vector<GenStmt>& vec, size_t i) {
                             if ((vec[i].k == GenStmt::K::For ||
                                  vec[i].k == GenStmt::K::While) &&
                                 vec[i].trips > 1)
                                 ++n;
                             return false;
                         });
        return n;
    }
    return 0;
}

bool
applySite(GenProgram* prog, ReduceKind kind, int64_t index)
{
    int64_t at = index;
    switch (kind) {
      case ReduceKind::DropFunc: {
        if (index + 1 >= static_cast<int64_t>(prog->funcs.size()))
            return false;
        std::string name = prog->funcs[static_cast<size_t>(index)].name;
        prog->funcs.erase(prog->funcs.begin() + index);
        stubCalls(prog, name);
        return true;
      }
      case ReduceKind::DropStmt: {
        for (GenFunc& f : prog->funcs) {
            bool changed = false;
            bool stop = walkStmtVecs(
                f.stmts, [&](std::vector<GenStmt>& vec, size_t i) {
                    if (at-- != 0)
                        return false;
                    // The function's final return must survive or the
                    // candidate is trivially ill-formed.
                    if (vec[i].k == GenStmt::K::Return &&
                        &vec == &f.stmts && i + 1 == vec.size())
                        return true; // stop; not applicable
                    vec.erase(vec.begin() + static_cast<int64_t>(i));
                    changed = true;
                    return true;
                });
            if (stop)
                return changed;
        }
        return false;
      }
      case ReduceKind::UnwrapBlock: {
        for (GenFunc& f : prog->funcs) {
            bool changed = false;
            bool stop = walkStmtVecs(
                f.stmts, [&](std::vector<GenStmt>& vec, size_t i) {
                    if (!isBlockStmt(vec[i]))
                        return false;
                    if (at-- != 0)
                        return false;
                    std::vector<GenStmt> spliced =
                        std::move(vec[i].body);
                    for (GenStmt& s : vec[i].elseBody)
                        spliced.push_back(std::move(s));
                    vec.erase(vec.begin() + static_cast<int64_t>(i));
                    vec.insert(vec.begin() + static_cast<int64_t>(i),
                               std::make_move_iterator(spliced.begin()),
                               std::make_move_iterator(spliced.end()));
                    changed = true;
                    return true;
                });
            if (stop)
                return changed;
        }
        return false;
      }
      case ReduceKind::ExprToChild: {
        for (GenFunc& f : prog->funcs) {
            bool stop = walkStmtExprs(f.stmts, [&](GenExpr& e) {
                if (e.kids.empty())
                    return false;
                if (at-- != 0)
                    return false;
                GenExpr child = std::move(e.kids[0]);
                e = std::move(child);
                return true;
            });
            if (stop)
                return true;
        }
        return false;
      }
      case ReduceKind::ExprToLit: {
        for (GenFunc& f : prog->funcs) {
            bool stop = walkStmtExprs(f.stmts, [&](GenExpr& e) {
                if (e.k == GenExpr::K::Lit)
                    return false;
                if (at-- != 0)
                    return false;
                e = GenExpr::lit(1);
                return true;
            });
            if (stop)
                return true;
        }
        return false;
      }
      case ReduceKind::ShrinkTrips: {
        for (GenFunc& f : prog->funcs) {
            bool stop = walkStmtVecs(
                f.stmts, [&](std::vector<GenStmt>& vec, size_t i) {
                    if ((vec[i].k != GenStmt::K::For &&
                         vec[i].k != GenStmt::K::While) ||
                        vec[i].trips <= 1)
                        return false;
                    if (at-- != 0)
                        return false;
                    vec[i].trips /= 2;
                    return true;
                });
            if (stop)
                return true;
        }
        return false;
      }
    }
    return false;
}

MinimizeStats
minimizeProgram(GenProgram* prog,
                const std::function<bool(const std::string&)>& stillFails,
                int64_t maxEvals)
{
    MinimizeStats stats;
    stats.beforeStmts = prog->statementCount();

    // Coarse shrinks first: whole functions, then blocks and
    // statements, then trip counts, then expression surgery.
    static const ReduceKind kOrder[] = {
        ReduceKind::DropFunc,   ReduceKind::UnwrapBlock,
        ReduceKind::DropStmt,   ReduceKind::ShrinkTrips,
        ReduceKind::ExprToChild, ReduceKind::ExprToLit,
    };

    bool progress = true;
    while (progress && stats.evals < maxEvals) {
        progress = false;
        for (ReduceKind kind : kOrder) {
            int64_t i = 0;
            while (i < countSites(*prog, kind) &&
                   stats.evals < maxEvals) {
                GenProgram cand = *prog;
                if (!applySite(&cand, kind, i)) {
                    ++i;
                    continue;
                }
                ++stats.evals;
                if (stillFails(cand.render())) {
                    *prog = std::move(cand);
                    ++stats.accepted;
                    progress = true;
                    // Indices shifted; retry the same site number.
                } else {
                    ++i;
                }
            }
        }
    }

    stats.afterStmts = prog->statementCount();
    return stats;
}

} // namespace fuzz
} // namespace cash
