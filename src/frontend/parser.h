/**
 * @file
 * Recursive-descent parser for Mini-C.
 */
#ifndef CASH_FRONTEND_PARSER_H
#define CASH_FRONTEND_PARSER_H

#include <string>
#include <vector>

#include "frontend/ast.h"
#include "frontend/token.h"

namespace cash {

/**
 * Parses a Mini-C translation unit into a Program.
 *
 * Usage:
 * @code
 *   Program prog = parseProgram(source);
 * @endcode
 * Throws FatalError on syntax errors.
 */
Program parseProgram(const std::string& source);

/** Parser over a pre-lexed token stream (exposed for testing). */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens);

    Program parse();

  private:
    // Token stream handling.
    const Token& peek(int ahead = 0) const;
    const Token& current() const { return peek(0); }
    Token consume();
    Token expect(Tok kind, const std::string& what);
    bool accept(Tok kind);
    bool atTypeStart(int ahead = 0) const;

    // Declarations.
    void parseTopLevel();
    TypePtr parseDeclSpecifiers(bool* isExtern, bool* isConst);
    TypePtr parsePointers(TypePtr base);
    void parseGlobalTail(TypePtr base, bool isExtern, bool isConst);
    FuncDecl* parseFunctionRest(TypePtr retType, const std::string& name,
                                SourceLoc loc);
    VarDecl* parseParam();
    void parsePragma(const Token& tok, const std::string& scope);
    int64_t parseArraySize();

    // Statements.
    Stmt* parseStmt();
    BlockStmt* parseBlock();
    Stmt* parseIf();
    Stmt* parseWhile();
    Stmt* parseDoWhile();
    Stmt* parseFor();
    Stmt* parseLocalDecl();

    // Expressions (precedence climbing).
    Expr* parseExpr();
    Expr* parseAssignment();
    Expr* parseConditional();
    Expr* parseBinary(int minPrec);
    Expr* parseUnary();
    Expr* parsePostfix();
    Expr* parsePrimary();

    /**
     * Recursion-depth guard: hostile inputs (thousands of nested
     * parens or `if`s) would otherwise overflow the host stack — a
     * crash, not a diagnostic.  Entered at the two points every
     * nesting level passes through (parseStmt, parseUnary).
     */
    struct DepthGuard
    {
        explicit DepthGuard(Parser& p);
        ~DepthGuard() { parser.depth_--; }
        Parser& parser;
    };

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    Program program_;
    std::string currentFunc_;  ///< For pragma scoping.
    int depth_ = 0;
};

} // namespace cash

#endif // CASH_FRONTEND_PARSER_H
