#include "frontend/sema.h"

#include <map>
#include <vector>

#include "support/diagnostics.h"

namespace cash {

namespace {

/** Lexically scoped symbol table for variable names. */
class Scopes
{
  public:
    void push() { scopes_.emplace_back(); }
    void pop() { scopes_.pop_back(); }

    void
    declare(VarDecl* var)
    {
        auto& top = scopes_.back();
        if (top.count(var->name))
            fatalAt(var->loc, "redeclaration of '" + var->name + "'");
        top[var->name] = var;
    }

    VarDecl*
    lookup(const std::string& name) const
    {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            auto found = it->find(name);
            if (found != it->end())
                return found->second;
        }
        return nullptr;
    }

  private:
    std::vector<std::map<std::string, VarDecl*>> scopes_;
};

/** Integer promotion: char/uchar promote to int. */
TypePtr
promote(const TypePtr& t)
{
    if (t->kind == TypeKind::Char || t->kind == TypeKind::UChar)
        return Type::makeInt();
    return t;
}

/** Usual arithmetic conversions over the int/uint lattice. */
TypePtr
arith(const TypePtr& a, const TypePtr& b)
{
    TypePtr pa = promote(a), pb = promote(b);
    if (pa->kind == TypeKind::UInt || pb->kind == TypeKind::UInt)
        return Type::makeUInt();
    return Type::makeInt();
}

/** Decay array types to pointers for rvalue contexts. */
TypePtr
decay(const TypePtr& t)
{
    if (t->isArray()) {
        TypePtr p = Type::makePointer(t->element);
        p->isConst = t->isConst;
        return p;
    }
    return t;
}

class Sema
{
  public:
    explicit Sema(Program& program) : prog_(program) {}

    void
    run()
    {
        // Declare all globals and functions first: Mini-C allows
        // forward references at file scope.
        scopes_.push();
        for (VarDecl* g : prog_.globals) {
            g->inMemory = true;
            scopes_.declare(g);
        }
        // Type-check global initializers (layout folds them later).
        for (size_t i = 0; i < prog_.globals.size(); i++) {
            VarDecl* g = prog_.globals[i];
            if (g->init)
                checkExpr(g->init);
            for (Expr* e : g->initList)
                checkExpr(e);
        }
        for (FuncDecl* f : prog_.functions)
            declareFunction(f);
        for (FuncDecl* f : prog_.functions)
            if (f->body)
                checkFunction(f);
        scopes_.pop();
    }

  private:
    void
    declareFunction(FuncDecl* f)
    {
        auto it = funcs_.find(f->name);
        if (it != funcs_.end()) {
            FuncDecl* prev = it->second;
            if (prev->body && f->body)
                fatalAt(f->loc, "redefinition of '" + f->name + "'");
            // Prefer the definition.
            if (f->body)
                it->second = f;
        } else {
            funcs_[f->name] = f;
        }
    }

    void
    checkFunction(FuncDecl* f)
    {
        curFunc_ = f;
        loopDepth_ = 0;
        nextVarId_ = 0;
        scopes_.push();
        for (VarDecl* p : f->params) {
            if (p->type->isVoid())
                fatalAt(p->loc, "parameter of void type");
            p->varId = nextVarId_++;
            scopes_.declare(p);
        }
        checkStmt(f->body);
        scopes_.pop();
        f->numRegisterVars = nextVarId_;
        curFunc_ = nullptr;
    }

    void
    declareLocal(VarDecl* var)
    {
        if (var->type->isVoid())
            fatalAt(var->loc, "variable of void type");
        if (var->type->isArray() && var->type->arraySize <= 0)
            fatalAt(var->loc, "local array needs a constant size");
        scopes_.declare(var);
        curFunc_->locals.push_back(var);
        // Arrays always live in memory; scalars provisionally get a
        // register and are demoted if their address is taken (second
        // pass below handles the demotion).
        if (var->type->isArray())
            var->inMemory = true;
        else
            var->varId = nextVarId_++;
        if (var->init) {
            checkExpr(var->init);
            requireScalar(var->init, "initializer");
        }
        for (Expr* e : var->initList)
            checkExpr(e);
        if (!var->initList.empty() && !var->type->isArray())
            fatalAt(var->loc, "initializer list on non-array");
    }

    void
    checkStmt(Stmt* s)
    {
        switch (s->kind) {
          case StmtKind::Expr:
            checkExpr(static_cast<ExprStmt*>(s)->expr);
            break;
          case StmtKind::Decl:
            for (VarDecl* d : static_cast<DeclStmt*>(s)->decls)
                declareLocal(d);
            break;
          case StmtKind::If: {
            auto* i = static_cast<IfStmt*>(s);
            checkExpr(i->cond);
            checkStmt(i->thenStmt);
            if (i->elseStmt)
                checkStmt(i->elseStmt);
            break;
          }
          case StmtKind::While: {
            auto* w = static_cast<WhileStmt*>(s);
            checkExpr(w->cond);
            loopDepth_++;
            checkStmt(w->body);
            loopDepth_--;
            break;
          }
          case StmtKind::DoWhile: {
            auto* w = static_cast<DoWhileStmt*>(s);
            loopDepth_++;
            checkStmt(w->body);
            loopDepth_--;
            checkExpr(w->cond);
            break;
          }
          case StmtKind::For: {
            auto* f = static_cast<ForStmt*>(s);
            scopes_.push();
            if (f->init)
                checkStmt(f->init);
            if (f->cond)
                checkExpr(f->cond);
            if (f->step)
                checkExpr(f->step);
            loopDepth_++;
            checkStmt(f->body);
            loopDepth_--;
            scopes_.pop();
            break;
          }
          case StmtKind::Return: {
            auto* r = static_cast<ReturnStmt*>(s);
            if (r->value) {
                if (curFunc_->returnType->isVoid())
                    fatalAt(r->loc, "returning a value from void function");
                checkExpr(r->value);
            } else if (!curFunc_->returnType->isVoid()) {
                fatalAt(r->loc, "non-void function must return a value");
            }
            break;
          }
          case StmtKind::Break:
          case StmtKind::Continue:
            if (loopDepth_ == 0)
                fatalAt(s->loc, "break/continue outside loop");
            break;
          case StmtKind::Block: {
            scopes_.push();
            for (Stmt* sub : static_cast<BlockStmt*>(s)->stmts)
                checkStmt(sub);
            scopes_.pop();
            break;
          }
          case StmtKind::Empty:
            break;
        }
    }

    void
    requireScalar(Expr* e, const std::string& what)
    {
        TypePtr t = decay(e->type);  // arrays decay to pointers
        if (!t->isInteger() && !t->isPointer())
            fatalAt(e->loc, what + " must have scalar type, has " +
                                e->type->str());
    }

    /** True when @p e may appear on the left of an assignment. */
    bool
    isLvalue(const Expr* e) const
    {
        switch (e->kind) {
          case ExprKind::VarRef:
            return !static_cast<const VarRefExpr*>(e)->decl->type->isArray();
          case ExprKind::Index:
          case ExprKind::Deref:
            return true;
          default:
            return false;
        }
    }

    void
    markAddressTaken(Expr* e)
    {
        if (e->kind == ExprKind::VarRef) {
            VarDecl* d = static_cast<VarRefExpr*>(e)->decl;
            d->addressTaken = true;
            if (d->storage == Storage::Param)
                fatalAt(e->loc,
                        "taking the address of a parameter is unsupported");
            if (!d->type->isArray() && d->storage == Storage::Local) {
                // Demote from register to memory.
                d->inMemory = true;
            }
        }
        // &a[i] and &*p take no new object's address.
    }

    void
    checkExpr(Expr* e)
    {
        switch (e->kind) {
          case ExprKind::IntLit: {
            auto* lit = static_cast<IntLitExpr*>(e);
            e->type = lit->isUnsignedLit ? Type::makeUInt()
                                         : Type::makeInt();
            break;
          }
          case ExprKind::StrLit: {
            auto* lit = static_cast<StrLitExpr*>(e);
            // Materialize a hidden const char array global.
            VarDecl* g = prog_.arena->makeVar();
            g->name = "__str" + std::to_string(nextString_++);
            TypePtr arr = Type::makeArray(
                Type::makeChar(),
                static_cast<int64_t>(lit->value.size()) + 1);
            g->type = Type::makeConst(arr);
            g->storage = Storage::Global;
            g->inMemory = true;
            g->loc = e->loc;
            for (size_t i = 0; i < lit->value.size(); i++) {
                auto* c = prog_.arena->make<IntLitExpr>();
                c->value = static_cast<unsigned char>(lit->value[i]);
                c->type = Type::makeChar();
                g->initList.push_back(c);
            }
            auto* nul = prog_.arena->make<IntLitExpr>();
            nul->value = 0;
            nul->type = Type::makeChar();
            g->initList.push_back(nul);
            prog_.globals.push_back(g);
            lit->object = g;
            TypePtr pc = Type::makePointer(Type::makeChar());
            pc->isConst = true;
            e->type = pc;
            break;
          }
          case ExprKind::VarRef: {
            auto* ref = static_cast<VarRefExpr*>(e);
            VarDecl* d = scopes_.lookup(ref->name);
            if (!d)
                fatalAt(e->loc, "undeclared identifier '" + ref->name + "'");
            ref->decl = d;
            e->type = d->type;
            break;
          }
          case ExprKind::Unary: {
            auto* u = static_cast<UnaryExpr*>(e);
            checkExpr(u->operand);
            if (u->op == UnaryOp::Not) {
                requireScalar(u->operand, "operand of '!'");
                e->type = Type::makeInt();
            } else {
                if (!decay(u->operand->type)->isInteger())
                    fatalAt(e->loc, "unary arithmetic on non-integer");
                e->type = promote(u->operand->type);
            }
            break;
          }
          case ExprKind::Binary: {
            auto* b = static_cast<BinaryExpr*>(e);
            checkExpr(b->lhs);
            checkExpr(b->rhs);
            TypePtr lt = decay(b->lhs->type);
            TypePtr rt = decay(b->rhs->type);
            switch (b->op) {
              case BinaryOp::Add:
                if (lt->isPointer() && rt->isInteger())
                    e->type = lt;
                else if (lt->isInteger() && rt->isPointer())
                    e->type = rt;
                else if (lt->isInteger() && rt->isInteger())
                    e->type = arith(lt, rt);
                else
                    fatalAt(e->loc, "invalid operands to '+'");
                break;
              case BinaryOp::Sub:
                if (lt->isPointer() && rt->isPointer())
                    e->type = Type::makeInt();
                else if (lt->isPointer() && rt->isInteger())
                    e->type = lt;
                else if (lt->isInteger() && rt->isInteger())
                    e->type = arith(lt, rt);
                else
                    fatalAt(e->loc, "invalid operands to '-'");
                break;
              case BinaryOp::Shl:
              case BinaryOp::Shr:
                if (!lt->isInteger() || !rt->isInteger())
                    fatalAt(e->loc, "shift of non-integer");
                e->type = promote(lt);
                break;
              case BinaryOp::Lt: case BinaryOp::Le:
              case BinaryOp::Gt: case BinaryOp::Ge:
              case BinaryOp::Eq: case BinaryOp::Ne:
              case BinaryOp::LogAnd: case BinaryOp::LogOr:
                e->type = Type::makeInt();
                break;
              default:
                if (!lt->isInteger() || !rt->isInteger())
                    fatalAt(e->loc, "arithmetic on non-integer operands");
                e->type = arith(lt, rt);
                break;
            }
            break;
          }
          case ExprKind::Assign: {
            auto* a = static_cast<AssignExpr*>(e);
            checkExpr(a->lhs);
            checkExpr(a->rhs);
            if (!isLvalue(a->lhs))
                fatalAt(a->loc, "assignment target is not an lvalue");
            requireScalar(a->lhs, "assignment target");
            e->type = a->lhs->type;
            break;
          }
          case ExprKind::Index: {
            auto* i = static_cast<IndexExpr*>(e);
            checkExpr(i->base);
            checkExpr(i->index);
            TypePtr bt = decay(i->base->type);
            if (!bt->isPointer())
                fatalAt(e->loc, "subscripted value is not array/pointer");
            if (!decay(i->index->type)->isInteger())
                fatalAt(e->loc, "array subscript is not an integer");
            e->type = bt->element;
            if (bt->isConst && !e->type->isConst)
                e->type = Type::makeConst(e->type);
            break;
          }
          case ExprKind::Deref: {
            auto* d = static_cast<DerefExpr*>(e);
            checkExpr(d->pointer);
            TypePtr pt = decay(d->pointer->type);
            if (!pt->isPointer())
                fatalAt(e->loc, "dereference of non-pointer");
            e->type = pt->element;
            if (pt->isConst && !e->type->isConst)
                e->type = Type::makeConst(e->type);
            break;
          }
          case ExprKind::AddrOf: {
            auto* a = static_cast<AddrOfExpr*>(e);
            checkExpr(a->lvalue);
            if (!isLvalue(a->lvalue) &&
                !(a->lvalue->kind == ExprKind::VarRef &&
                  static_cast<VarRefExpr*>(a->lvalue)
                      ->decl->type->isArray()))
                fatalAt(e->loc, "cannot take the address of this expression");
            markAddressTaken(a->lvalue);
            e->type = Type::makePointer(decay(a->lvalue->type));
            // &array means pointer-to-first-element in Mini-C.
            if (a->lvalue->type->isArray())
                e->type = Type::makePointer(a->lvalue->type->element);
            break;
          }
          case ExprKind::Call: {
            auto* c = static_cast<CallExpr*>(e);
            auto it = funcs_.find(c->callee);
            if (it == funcs_.end())
                fatalAt(e->loc, "call to undeclared function '" +
                                    c->callee + "'");
            FuncDecl* f = it->second;
            c->decl = f;
            if (c->args.size() != f->params.size())
                fatalAt(e->loc, "wrong number of arguments to '" +
                                    c->callee + "'");
            for (Expr* a : c->args) {
                checkExpr(a);
                if (!decay(a->type)->isInteger() &&
                    !decay(a->type)->isPointer())
                    fatalAt(a->loc, "argument must be scalar");
            }
            e->type = f->returnType;
            break;
          }
          case ExprKind::Cast: {
            auto* c = static_cast<CastExpr*>(e);
            checkExpr(c->operand);
            e->type = c->target;
            break;
          }
          case ExprKind::Cond: {
            auto* c = static_cast<CondExpr*>(e);
            checkExpr(c->cond);
            checkExpr(c->thenExpr);
            checkExpr(c->elseExpr);
            TypePtr tt = decay(c->thenExpr->type);
            TypePtr et = decay(c->elseExpr->type);
            if (tt->isPointer() || et->isPointer())
                e->type = tt->isPointer() ? tt : et;
            else
                e->type = arith(tt, et);
            break;
          }
          case ExprKind::IncDec: {
            auto* i = static_cast<IncDecExpr*>(e);
            checkExpr(i->lvalue);
            if (!isLvalue(i->lvalue))
                fatalAt(e->loc, "++/-- target is not an lvalue");
            requireScalar(i->lvalue, "++/-- target");
            e->type = i->lvalue->type;
            break;
          }
        }
    }

    Program& prog_;
    Scopes scopes_;
    std::map<std::string, FuncDecl*> funcs_;
    FuncDecl* curFunc_ = nullptr;
    int loopDepth_ = 0;
    int nextVarId_ = 0;
    int nextString_ = 0;
};

} // namespace

void
analyzeProgram(Program& program)
{
    Sema sema(program);
    sema.run();

    // Second pass: locals demoted to memory by address-taking keep their
    // (now unused) varId; compact ids so lowering sees a dense space.
    for (FuncDecl* f : program.functions) {
        if (!f->body)
            continue;
        int next = 0;
        for (VarDecl* p : f->params)
            p->varId = next++;
        for (VarDecl* l : f->locals) {
            if (l->inMemory)
                l->varId = -1;
            else
                l->varId = next++;
        }
        f->numRegisterVars = next;
    }
}

int64_t
evalConstExpr(const Expr* e)
{
    if (!e)
        fatal("null constant expression");
    switch (e->kind) {
      case ExprKind::IntLit:
        return static_cast<const IntLitExpr*>(e)->value;
      case ExprKind::Unary: {
        auto* u = static_cast<const UnaryExpr*>(e);
        int64_t v = evalConstExpr(u->operand);
        switch (u->op) {
          case UnaryOp::Neg: return -v;
          case UnaryOp::Not: return !v;
          case UnaryOp::BitNot: return ~v;
          case UnaryOp::Plus: return v;
        }
        break;
      }
      case ExprKind::Binary: {
        auto* b = static_cast<const BinaryExpr*>(e);
        int64_t l = evalConstExpr(b->lhs);
        int64_t r = evalConstExpr(b->rhs);
        switch (b->op) {
          case BinaryOp::Add: return l + r;
          case BinaryOp::Sub: return l - r;
          case BinaryOp::Mul: return l * r;
          case BinaryOp::Div:
            if (!r)
                fatal("division by zero in constant expression");
            return l / r;
          case BinaryOp::Rem:
            if (!r)
                fatal("remainder by zero in constant expression");
            return l % r;
          case BinaryOp::And: return l & r;
          case BinaryOp::Or: return l | r;
          case BinaryOp::Xor: return l ^ r;
          case BinaryOp::Shl: return l << (r & 31);
          case BinaryOp::Shr: return l >> (r & 31);
          case BinaryOp::Lt: return l < r;
          case BinaryOp::Le: return l <= r;
          case BinaryOp::Gt: return l > r;
          case BinaryOp::Ge: return l >= r;
          case BinaryOp::Eq: return l == r;
          case BinaryOp::Ne: return l != r;
          case BinaryOp::LogAnd: return l && r;
          case BinaryOp::LogOr: return l || r;
        }
        break;
      }
      case ExprKind::Cast:
        return evalConstExpr(static_cast<const CastExpr*>(e)->operand);
      case ExprKind::Cond: {
        auto* c = static_cast<const CondExpr*>(e);
        return evalConstExpr(c->cond) ? evalConstExpr(c->thenExpr)
                                      : evalConstExpr(c->elseExpr);
      }
      default:
        break;
    }
    fatalAt(e->loc, "expression is not a compile-time constant");
}

} // namespace cash
