#include "frontend/parser.h"

#include <cstdint>

#include "frontend/lexer.h"
#include "support/strings.h"

namespace cash {

Program
parseProgram(const std::string& source)
{
    Lexer lexer(source);
    Parser parser(lexer.lexAll());
    return parser.parse();
}

Parser::Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

const Token&
Parser::peek(int ahead) const
{
    size_t p = pos_ + ahead;
    if (p >= tokens_.size())
        p = tokens_.size() - 1;  // EOF token
    return tokens_[p];
}

Token
Parser::consume()
{
    Token t = current();
    if (pos_ + 1 < tokens_.size())
        pos_++;
    return t;
}

Token
Parser::expect(Tok kind, const std::string& what)
{
    if (!current().is(kind)) {
        fatalAt(current().loc, "expected " + std::string(tokName(kind)) +
                                   " " + what + ", found " +
                                   tokName(current().kind));
    }
    return consume();
}

bool
Parser::accept(Tok kind)
{
    if (!current().is(kind))
        return false;
    consume();
    return true;
}

bool
Parser::atTypeStart(int ahead) const
{
    switch (peek(ahead).kind) {
      case Tok::KwInt:
      case Tok::KwUnsigned:
      case Tok::KwChar:
      case Tok::KwLong:
      case Tok::KwVoid:
      case Tok::KwConst:
      case Tok::KwExtern:
      case Tok::KwStatic:
      case Tok::KwSigned:
        return true;
      default:
        return false;
    }
}

Program
Parser::parse()
{
    while (!current().is(Tok::EndOfFile))
        parseTopLevel();
    return std::move(program_);
}

void
Parser::parseTopLevel()
{
    if (current().is(Tok::Pragma)) {
        Token t = consume();
        parsePragma(t, "");
        return;
    }
    if (accept(Tok::Semicolon))
        return;

    bool isExtern = false, isConst = false;
    TypePtr base = parseDeclSpecifiers(&isExtern, &isConst);
    parseGlobalTail(base, isExtern, isConst);
}

void
Parser::parsePragma(const Token& tok, const std::string& scope)
{
    // tok.text holds everything after '#', e.g. "pragma independent p q".
    std::vector<std::string> words;
    for (const std::string& w : split(trim(tok.text), ' '))
        if (!w.empty())
            words.push_back(w);
    if (words.size() >= 1 && words[0] == "pragma") {
        if (words.size() == 4 && words[1] == "independent") {
            PragmaIndependent p;
            p.funcName = scope;
            p.first = words[2];
            p.second = words[3];
            p.loc = tok.loc;
            program_.pragmas.push_back(std::move(p));
            return;
        }
        warn(tok.loc.str() + ": ignoring unknown pragma '" + tok.text + "'");
        return;
    }
    fatalAt(tok.loc, "Mini-C has no preprocessor; only #pragma is allowed");
}

TypePtr
Parser::parseDeclSpecifiers(bool* isExtern, bool* isConst)
{
    *isExtern = false;
    *isConst = false;
    bool sawUnsigned = false, sawSigned = false;
    bool sawChar = false, sawIntish = false, sawVoid = false;

    for (;;) {
        switch (current().kind) {
          case Tok::KwExtern: consume(); *isExtern = true; continue;
          case Tok::KwStatic: consume(); continue;  // storage is irrelevant
          case Tok::KwConst: consume(); *isConst = true; continue;
          case Tok::KwUnsigned: consume(); sawUnsigned = true; continue;
          case Tok::KwSigned: consume(); sawSigned = true; continue;
          case Tok::KwInt:
          case Tok::KwLong: consume(); sawIntish = true; continue;
          case Tok::KwChar: consume(); sawChar = true; continue;
          case Tok::KwVoid: consume(); sawVoid = true; continue;
          default: break;
        }
        break;
    }

    (void)sawSigned;
    TypePtr t;
    if (sawVoid)
        t = Type::makeVoid();
    else if (sawChar)
        t = sawUnsigned ? Type::makeUChar() : Type::makeChar();
    else if (sawUnsigned)
        t = Type::makeUInt();
    else if (sawIntish || sawSigned)
        t = Type::makeInt();
    else
        fatalAt(current().loc, "expected a type specifier");

    if (*isConst)
        t = Type::makeConst(t);
    return t;
}

TypePtr
Parser::parsePointers(TypePtr base)
{
    while (accept(Tok::Star)) {
        // `T *const p` — const applies to the pointer; we don't model
        // pointer-constness separately, so just accept it.
        accept(Tok::KwConst);
        base = Type::makePointer(base);
    }
    return base;
}

int64_t
Parser::parseArraySize()
{
    // Inside '[' ... ']'.  Mini-C restricts sizes to integer literals
    // (possibly a product, e.g. [16*4]) to avoid a full const-expr pass.
    if (current().is(Tok::RBracket))
        return 0;  // unknown extent (extern int a[])
    Token first = expect(Tok::IntLiteral, "as array size");
    int64_t v = first.intValue;
    // Overflow-checked arithmetic: a hostile size like [1<<40 * ...]
    // must produce a diagnostic, not wrap into a bogus small extent.
    auto overflow = [&]() {
        fatalAt(first.loc, "array size overflows");
    };
    while (accept(Tok::Star)) {
        int64_t f =
            expect(Tok::IntLiteral, "in array size product").intValue;
        if (__builtin_mul_overflow(v, f, &v))
            overflow();
    }
    while (accept(Tok::Plus)) {
        int64_t f =
            expect(Tok::IntLiteral, "in array size sum").intValue;
        if (__builtin_add_overflow(v, f, &v))
            overflow();
    }
    // The simulated address space is 32-bit; anything that cannot
    // even be addressed is rejected here rather than overflowing the
    // layout arithmetic downstream.
    if (v < 0 || v > INT32_MAX)
        fatalAt(first.loc, "array size out of range: " +
                               std::to_string(v));
    return v;
}

void
Parser::parseGlobalTail(TypePtr base, bool isExtern, bool isConst)
{
    for (;;) {
        TypePtr type = parsePointers(base);
        Token nameTok = expect(Tok::Identifier, "in declaration");

        // Function definition or prototype?
        if (current().is(Tok::LParen)) {
            FuncDecl* fn =
                parseFunctionRest(type, nameTok.text, nameTok.loc);
            (void)fn;
            return;
        }

        // Variable: optional array extents.
        while (accept(Tok::LBracket)) {
            int64_t n = parseArraySize();
            expect(Tok::RBracket, "after array size");
            type = Type::makeArray(type, n);
        }
        if (isConst && !type->isConst)
            type = Type::makeConst(type);

        VarDecl* var = program_.arena->makeVar();
        var->name = nameTok.text;
        var->type = type;
        var->storage = Storage::Global;
        var->isExtern = isExtern;
        var->loc = nameTok.loc;

        if (accept(Tok::Assign)) {
            if (accept(Tok::LBrace)) {
                if (!current().is(Tok::RBrace)) {
                    do {
                        var->initList.push_back(parseAssignment());
                    } while (accept(Tok::Comma) &&
                             !current().is(Tok::RBrace));
                }
                expect(Tok::RBrace, "after initializer list");
            } else {
                var->init = parseAssignment();
            }
        }
        program_.globals.push_back(var);

        if (accept(Tok::Comma))
            continue;
        expect(Tok::Semicolon, "after declaration");
        return;
    }
}

VarDecl*
Parser::parseParam()
{
    bool isExtern = false, isConst = false;
    TypePtr type = parseDeclSpecifiers(&isExtern, &isConst);
    type = parsePointers(type);
    Token nameTok = expect(Tok::Identifier, "as parameter name");
    // Array parameters decay to pointers.
    while (accept(Tok::LBracket)) {
        parseArraySize();
        expect(Tok::RBracket, "after parameter array extent");
        type = Type::makePointer(type);
    }
    VarDecl* p = program_.arena->makeVar();
    p->name = nameTok.text;
    p->type = type;
    p->storage = Storage::Param;
    p->loc = nameTok.loc;
    return p;
}

FuncDecl*
Parser::parseFunctionRest(TypePtr retType, const std::string& name,
                          SourceLoc loc)
{
    expect(Tok::LParen, "after function name");
    FuncDecl* fn = program_.arena->makeFunc();
    fn->name = name;
    fn->returnType = retType;
    fn->loc = loc;

    if (!current().is(Tok::RParen)) {
        if (current().is(Tok::KwVoid) && peek(1).is(Tok::RParen)) {
            consume();  // f(void)
        } else {
            do {
                fn->params.push_back(parseParam());
            } while (accept(Tok::Comma));
        }
    }
    expect(Tok::RParen, "after parameter list");

    if (accept(Tok::Semicolon)) {
        program_.functions.push_back(fn);  // prototype
        return fn;
    }

    currentFunc_ = name;
    fn->body = parseBlock();
    currentFunc_.clear();
    program_.functions.push_back(fn);
    return fn;
}

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

BlockStmt*
Parser::parseBlock()
{
    Token open = expect(Tok::LBrace, "to open block");
    auto* block = program_.arena->make<BlockStmt>();
    block->loc = open.loc;
    while (!current().is(Tok::RBrace)) {
        if (current().is(Tok::EndOfFile))
            fatalAt(open.loc, "unterminated block");
        block->stmts.push_back(parseStmt());
    }
    consume();  // '}'
    return block;
}

Parser::DepthGuard::DepthGuard(Parser& p) : parser(p)
{
    // Far deeper than any real program, far shallower than the host
    // stack: each level costs a few hundred bytes of parser frames.
    constexpr int kMaxDepth = 512;
    if (++parser.depth_ > kMaxDepth)
        fatalAt(parser.current().loc,
                "expression or statement nesting too deep (limit " +
                    std::to_string(kMaxDepth) + ")");
}

Stmt*
Parser::parseStmt()
{
    DepthGuard guard(*this);
    switch (current().kind) {
      case Tok::LBrace: return parseBlock();
      case Tok::KwIf: return parseIf();
      case Tok::KwWhile: return parseWhile();
      case Tok::KwDo: return parseDoWhile();
      case Tok::KwFor: return parseFor();
      case Tok::KwReturn: {
        Token t = consume();
        auto* s = program_.arena->make<ReturnStmt>();
        s->loc = t.loc;
        if (!current().is(Tok::Semicolon))
            s->value = parseExpr();
        expect(Tok::Semicolon, "after return");
        return s;
      }
      case Tok::KwBreak: {
        Token t = consume();
        expect(Tok::Semicolon, "after break");
        auto* s = program_.arena->make<BreakStmt>();
        s->loc = t.loc;
        return s;
      }
      case Tok::KwContinue: {
        Token t = consume();
        expect(Tok::Semicolon, "after continue");
        auto* s = program_.arena->make<ContinueStmt>();
        s->loc = t.loc;
        return s;
      }
      case Tok::Semicolon: {
        Token t = consume();
        auto* s = program_.arena->make<EmptyStmt>();
        s->loc = t.loc;
        return s;
      }
      case Tok::Pragma: {
        Token t = consume();
        parsePragma(t, currentFunc_);
        auto* s = program_.arena->make<EmptyStmt>();
        s->loc = t.loc;
        return s;
      }
      default:
        if (atTypeStart())
            return parseLocalDecl();
        {
            auto* s = program_.arena->make<ExprStmt>();
            s->loc = current().loc;
            s->expr = parseExpr();
            expect(Tok::Semicolon, "after expression");
            return s;
        }
    }
}

Stmt*
Parser::parseIf()
{
    Token t = consume();
    auto* s = program_.arena->make<IfStmt>();
    s->loc = t.loc;
    expect(Tok::LParen, "after if");
    s->cond = parseExpr();
    expect(Tok::RParen, "after if condition");
    s->thenStmt = parseStmt();
    if (accept(Tok::KwElse))
        s->elseStmt = parseStmt();
    return s;
}

Stmt*
Parser::parseWhile()
{
    Token t = consume();
    auto* s = program_.arena->make<WhileStmt>();
    s->loc = t.loc;
    expect(Tok::LParen, "after while");
    s->cond = parseExpr();
    expect(Tok::RParen, "after while condition");
    s->body = parseStmt();
    return s;
}

Stmt*
Parser::parseDoWhile()
{
    Token t = consume();
    auto* s = program_.arena->make<DoWhileStmt>();
    s->loc = t.loc;
    s->body = parseStmt();
    expect(Tok::KwWhile, "after do body");
    expect(Tok::LParen, "after while");
    s->cond = parseExpr();
    expect(Tok::RParen, "after do-while condition");
    expect(Tok::Semicolon, "after do-while");
    return s;
}

Stmt*
Parser::parseFor()
{
    Token t = consume();
    auto* s = program_.arena->make<ForStmt>();
    s->loc = t.loc;
    expect(Tok::LParen, "after for");
    if (!current().is(Tok::Semicolon)) {
        if (atTypeStart()) {
            s->init = parseLocalDecl();  // consumes the ';'
        } else {
            auto* es = program_.arena->make<ExprStmt>();
            es->loc = current().loc;
            es->expr = parseExpr();
            s->init = es;
            expect(Tok::Semicolon, "after for initializer");
        }
    } else {
        consume();
    }
    if (!current().is(Tok::Semicolon))
        s->cond = parseExpr();
    expect(Tok::Semicolon, "after for condition");
    if (!current().is(Tok::RParen))
        s->step = parseExpr();
    expect(Tok::RParen, "after for step");
    s->body = parseStmt();
    return s;
}

Stmt*
Parser::parseLocalDecl()
{
    bool isExtern = false, isConst = false;
    TypePtr base = parseDeclSpecifiers(&isExtern, &isConst);
    auto* ds = program_.arena->make<DeclStmt>();
    ds->loc = current().loc;
    do {
        TypePtr type = parsePointers(base);
        Token nameTok = expect(Tok::Identifier, "in declaration");
        while (accept(Tok::LBracket)) {
            int64_t n = parseArraySize();
            expect(Tok::RBracket, "after array size");
            type = Type::makeArray(type, n);
        }
        if (isConst && !type->isConst)
            type = Type::makeConst(type);
        VarDecl* var = program_.arena->makeVar();
        var->name = nameTok.text;
        var->type = type;
        var->storage = Storage::Local;
        var->loc = nameTok.loc;
        if (accept(Tok::Assign)) {
            if (accept(Tok::LBrace)) {
                if (!current().is(Tok::RBrace)) {
                    do {
                        var->initList.push_back(parseAssignment());
                    } while (accept(Tok::Comma) &&
                             !current().is(Tok::RBrace));
                }
                expect(Tok::RBrace, "after initializer list");
            } else {
                var->init = parseAssignment();
            }
        }
        ds->decls.push_back(var);
    } while (accept(Tok::Comma));
    expect(Tok::Semicolon, "after declaration");
    return ds;
}

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

Expr*
Parser::parseExpr()
{
    return parseAssignment();
}

namespace {

/** Map an assignment token to its AssignOp, or nullopt. */
bool
assignOpFor(Tok t, AssignOp* out)
{
    switch (t) {
      case Tok::Assign: *out = AssignOp::Assign; return true;
      case Tok::PlusAssign: *out = AssignOp::Add; return true;
      case Tok::MinusAssign: *out = AssignOp::Sub; return true;
      case Tok::StarAssign: *out = AssignOp::Mul; return true;
      case Tok::SlashAssign: *out = AssignOp::Div; return true;
      case Tok::PercentAssign: *out = AssignOp::Rem; return true;
      case Tok::AmpAssign: *out = AssignOp::And; return true;
      case Tok::PipeAssign: *out = AssignOp::Or; return true;
      case Tok::CaretAssign: *out = AssignOp::Xor; return true;
      case Tok::ShlAssign: *out = AssignOp::Shl; return true;
      case Tok::ShrAssign: *out = AssignOp::Shr; return true;
      default: return false;
    }
}

/** Binary operator precedence; higher binds tighter. 0 = not binary. */
int
binPrec(Tok t)
{
    switch (t) {
      case Tok::Star: case Tok::Slash: case Tok::Percent: return 10;
      case Tok::Plus: case Tok::Minus: return 9;
      case Tok::Shl: case Tok::Shr: return 8;
      case Tok::Lt: case Tok::Le: case Tok::Gt: case Tok::Ge: return 7;
      case Tok::EqEq: case Tok::NotEq: return 6;
      case Tok::Amp: return 5;
      case Tok::Caret: return 4;
      case Tok::Pipe: return 3;
      case Tok::AmpAmp: return 2;
      case Tok::PipePipe: return 1;
      default: return 0;
    }
}

BinaryOp
binOpFor(Tok t)
{
    switch (t) {
      case Tok::Star: return BinaryOp::Mul;
      case Tok::Slash: return BinaryOp::Div;
      case Tok::Percent: return BinaryOp::Rem;
      case Tok::Plus: return BinaryOp::Add;
      case Tok::Minus: return BinaryOp::Sub;
      case Tok::Shl: return BinaryOp::Shl;
      case Tok::Shr: return BinaryOp::Shr;
      case Tok::Lt: return BinaryOp::Lt;
      case Tok::Le: return BinaryOp::Le;
      case Tok::Gt: return BinaryOp::Gt;
      case Tok::Ge: return BinaryOp::Ge;
      case Tok::EqEq: return BinaryOp::Eq;
      case Tok::NotEq: return BinaryOp::Ne;
      case Tok::Amp: return BinaryOp::And;
      case Tok::Caret: return BinaryOp::Xor;
      case Tok::Pipe: return BinaryOp::Or;
      case Tok::AmpAmp: return BinaryOp::LogAnd;
      case Tok::PipePipe: return BinaryOp::LogOr;
      default: panic("not a binary operator token");
    }
}

} // namespace

Expr*
Parser::parseAssignment()
{
    Expr* lhs = parseConditional();
    AssignOp op;
    if (assignOpFor(current().kind, &op)) {
        Token t = consume();
        auto* a = program_.arena->make<AssignExpr>();
        a->loc = t.loc;
        a->op = op;
        a->lhs = lhs;
        a->rhs = parseAssignment();
        return a;
    }
    return lhs;
}

Expr*
Parser::parseConditional()
{
    Expr* cond = parseBinary(1);
    if (!current().is(Tok::Question))
        return cond;
    Token t = consume();
    auto* c = program_.arena->make<CondExpr>();
    c->loc = t.loc;
    c->cond = cond;
    c->thenExpr = parseExpr();
    expect(Tok::Colon, "in conditional expression");
    c->elseExpr = parseConditional();
    return c;
}

Expr*
Parser::parseBinary(int minPrec)
{
    Expr* lhs = parseUnary();
    for (;;) {
        int prec = binPrec(current().kind);
        if (prec < minPrec || prec == 0)
            return lhs;
        Token t = consume();
        Expr* rhs = parseBinary(prec + 1);
        auto* b = program_.arena->make<BinaryExpr>();
        b->loc = t.loc;
        b->op = binOpFor(t.kind);
        b->lhs = lhs;
        b->rhs = rhs;
        lhs = b;
    }
}

Expr*
Parser::parseUnary()
{
    DepthGuard guard(*this);
    switch (current().kind) {
      case Tok::Plus: {
        Token t = consume();
        auto* u = program_.arena->make<UnaryExpr>();
        u->loc = t.loc;
        u->op = UnaryOp::Plus;
        u->operand = parseUnary();
        return u;
      }
      case Tok::Minus: {
        Token t = consume();
        auto* u = program_.arena->make<UnaryExpr>();
        u->loc = t.loc;
        u->op = UnaryOp::Neg;
        u->operand = parseUnary();
        return u;
      }
      case Tok::Bang: {
        Token t = consume();
        auto* u = program_.arena->make<UnaryExpr>();
        u->loc = t.loc;
        u->op = UnaryOp::Not;
        u->operand = parseUnary();
        return u;
      }
      case Tok::Tilde: {
        Token t = consume();
        auto* u = program_.arena->make<UnaryExpr>();
        u->loc = t.loc;
        u->op = UnaryOp::BitNot;
        u->operand = parseUnary();
        return u;
      }
      case Tok::Star: {
        Token t = consume();
        auto* d = program_.arena->make<DerefExpr>();
        d->loc = t.loc;
        d->pointer = parseUnary();
        return d;
      }
      case Tok::Amp: {
        Token t = consume();
        auto* a = program_.arena->make<AddrOfExpr>();
        a->loc = t.loc;
        a->lvalue = parseUnary();
        return a;
      }
      case Tok::PlusPlus:
      case Tok::MinusMinus: {
        Token t = consume();
        auto* i = program_.arena->make<IncDecExpr>();
        i->loc = t.loc;
        i->isIncrement = t.is(Tok::PlusPlus);
        i->isPrefix = true;
        i->lvalue = parseUnary();
        return i;
      }
      case Tok::LParen:
        // Cast: '(' type-specifiers '*'* ')'
        if (atTypeStart(1)) {
            Token t = consume();  // '('
            bool isExtern = false, isConst = false;
            TypePtr type = parseDeclSpecifiers(&isExtern, &isConst);
            type = parsePointers(type);
            expect(Tok::RParen, "after cast type");
            auto* c = program_.arena->make<CastExpr>();
            c->loc = t.loc;
            c->target = type;
            c->operand = parseUnary();
            return c;
        }
        return parsePostfix();
      default:
        return parsePostfix();
    }
}

Expr*
Parser::parsePostfix()
{
    Expr* e = parsePrimary();
    for (;;) {
        if (current().is(Tok::LBracket)) {
            Token t = consume();
            auto* idx = program_.arena->make<IndexExpr>();
            idx->loc = t.loc;
            idx->base = e;
            idx->index = parseExpr();
            expect(Tok::RBracket, "after array index");
            e = idx;
        } else if (current().is(Tok::LParen)) {
            if (e->kind != ExprKind::VarRef)
                fatalAt(current().loc,
                        "only direct calls to named functions supported");
            Token t = consume();
            auto* call = program_.arena->make<CallExpr>();
            call->loc = t.loc;
            call->callee = static_cast<VarRefExpr*>(e)->name;
            if (!current().is(Tok::RParen)) {
                do {
                    call->args.push_back(parseAssignment());
                } while (accept(Tok::Comma));
            }
            expect(Tok::RParen, "after call arguments");
            e = call;
        } else if (current().is(Tok::PlusPlus) ||
                   current().is(Tok::MinusMinus)) {
            Token t = consume();
            auto* i = program_.arena->make<IncDecExpr>();
            i->loc = t.loc;
            i->isIncrement = t.is(Tok::PlusPlus);
            i->isPrefix = false;
            i->lvalue = e;
            e = i;
        } else {
            return e;
        }
    }
}

Expr*
Parser::parsePrimary()
{
    switch (current().kind) {
      case Tok::IntLiteral:
      case Tok::CharLiteral: {
        Token t = consume();
        auto* lit = program_.arena->make<IntLitExpr>();
        lit->loc = t.loc;
        lit->value = t.intValue;
        lit->isUnsignedLit = t.isUnsigned;
        return lit;
      }
      case Tok::StringLiteral: {
        Token t = consume();
        auto* lit = program_.arena->make<StrLitExpr>();
        lit->loc = t.loc;
        lit->value = t.text;
        return lit;
      }
      case Tok::Identifier: {
        Token t = consume();
        auto* ref = program_.arena->make<VarRefExpr>();
        ref->loc = t.loc;
        ref->name = t.text;
        return ref;
      }
      case Tok::LParen: {
        consume();
        Expr* e = parseExpr();
        expect(Tok::RParen, "after parenthesized expression");
        return e;
      }
      default:
        fatalAt(current().loc,
                std::string("expected expression, found ") +
                    tokName(current().kind));
    }
}

} // namespace cash
