/**
 * @file
 * Memory layout: assigns addresses to every memory-resident object.
 *
 * The simulated machine has a flat 32-bit byte-addressed memory.
 * Globals are placed at static addresses starting at kGlobalBase;
 * memory-resident locals (arrays and address-taken scalars) get offsets
 * inside their function's activation frame, carved from a downward-
 * growing stack starting at kStackTop.
 */
#ifndef CASH_FRONTEND_LAYOUT_H
#define CASH_FRONTEND_LAYOUT_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "frontend/ast.h"

namespace cash {

/** One memory-resident object (a global or a frame-resident local). */
struct MemObject
{
    int id = -1;
    std::string name;
    const VarDecl* decl = nullptr;
    const FuncDecl* func = nullptr;  ///< Null for globals.
    uint32_t address = 0;            ///< Absolute for globals,
                                     ///< frame offset for locals.
    uint32_t size = 0;
    bool isGlobal = false;
    bool isConst = false;
};

/**
 * The computed layout of a whole program.
 */
class MemoryLayout
{
  public:
    static constexpr uint32_t kGlobalBase = 0x1000;
    static constexpr uint32_t kStackTop = 0x100000;   ///< 1 MiB
    static constexpr uint32_t kMemorySize = 0x200000; ///< 2 MiB
    /** Default element count given to extern arrays of unknown extent. */
    static constexpr int64_t kExternArrayElems = 4096;

    /** Compute the layout of @p program (sema must have run). */
    void build(Program& program);

    const std::vector<MemObject>& objects() const { return objects_; }
    const MemObject& object(int id) const { return objects_.at(id); }

    /** Frame size in bytes for @p f (0 when it has no memory locals). */
    uint32_t frameSize(const FuncDecl* f) const;

    /** First address past the last global. */
    uint32_t globalTop() const { return globalTop_; }

    /**
     * Initial content of the global segment,
     * covering [kGlobalBase, globalTop).
     */
    const std::vector<uint8_t>& globalImage() const { return image_; }

    /** Object id of the global named @p name, or -1. */
    int findGlobal(const std::string& name) const;

  private:
    void placeGlobal(VarDecl* g);
    void writeInit(const MemObject& obj, const VarDecl* g);
    void storeBytes(uint32_t addr, int64_t value, int size);

    std::vector<MemObject> objects_;
    std::map<const FuncDecl*, uint32_t> frameSizes_;
    std::vector<uint8_t> image_;
    uint32_t globalTop_ = kGlobalBase;
};

} // namespace cash

#endif // CASH_FRONTEND_LAYOUT_H
