#include "frontend/ast.h"

#include <sstream>

namespace cash {

TypePtr
Type::makeVoid()
{
    auto t = std::make_shared<Type>();
    t->kind = TypeKind::Void;
    return t;
}

TypePtr
Type::makeInt()
{
    auto t = std::make_shared<Type>();
    t->kind = TypeKind::Int;
    return t;
}

TypePtr
Type::makeUInt()
{
    auto t = std::make_shared<Type>();
    t->kind = TypeKind::UInt;
    return t;
}

TypePtr
Type::makeChar()
{
    auto t = std::make_shared<Type>();
    t->kind = TypeKind::Char;
    return t;
}

TypePtr
Type::makeUChar()
{
    auto t = std::make_shared<Type>();
    t->kind = TypeKind::UChar;
    return t;
}

TypePtr
Type::makePointer(TypePtr pointee)
{
    auto t = std::make_shared<Type>();
    t->kind = TypeKind::Pointer;
    t->element = std::move(pointee);
    return t;
}

TypePtr
Type::makeArray(TypePtr elem, int64_t count)
{
    auto t = std::make_shared<Type>();
    t->kind = TypeKind::Array;
    t->element = std::move(elem);
    t->arraySize = count;
    return t;
}

TypePtr
Type::makeConst(TypePtr base)
{
    auto t = std::make_shared<Type>(*base);
    t->isConst = true;
    return t;
}

int64_t
Type::sizeBytes() const
{
    switch (kind) {
      case TypeKind::Void: return 0;
      case TypeKind::Int:
      case TypeKind::UInt: return 4;
      case TypeKind::Char:
      case TypeKind::UChar: return 1;
      case TypeKind::Pointer: return 4;
      case TypeKind::Array: return element->sizeBytes() * arraySize;
    }
    return 0;
}

int
Type::accessSize() const
{
    switch (kind) {
      case TypeKind::Char:
      case TypeKind::UChar: return 1;
      default: return 4;
    }
}

std::string
Type::str() const
{
    std::string c = isConst ? "const " : "";
    switch (kind) {
      case TypeKind::Void: return c + "void";
      case TypeKind::Int: return c + "int";
      case TypeKind::UInt: return c + "unsigned";
      case TypeKind::Char: return c + "char";
      case TypeKind::UChar: return c + "unsigned char";
      case TypeKind::Pointer: return c + element->str() + "*";
      case TypeKind::Array:
        return c + element->str() + "[" +
               (arraySize ? std::to_string(arraySize) : "") + "]";
    }
    return "<bad type>";
}

bool
sameType(const TypePtr& a, const TypePtr& b)
{
    if (!a || !b)
        return a == b;
    if (a->kind != b->kind)
        return false;
    switch (a->kind) {
      case TypeKind::Pointer:
        return sameType(a->element, b->element);
      case TypeKind::Array:
        return a->arraySize == b->arraySize &&
               sameType(a->element, b->element);
      default:
        return true;
    }
}

FuncDecl*
Program::findFunction(const std::string& name) const
{
    for (FuncDecl* f : functions)
        if (f->name == name)
            return f;
    return nullptr;
}

VarDecl*
Program::findGlobal(const std::string& name) const
{
    for (VarDecl* g : globals)
        if (g->name == name)
            return g;
    return nullptr;
}

const char*
unaryOpName(UnaryOp op)
{
    switch (op) {
      case UnaryOp::Neg: return "-";
      case UnaryOp::Not: return "!";
      case UnaryOp::BitNot: return "~";
      case UnaryOp::Plus: return "+";
    }
    return "?";
}

const char*
binaryOpName(BinaryOp op)
{
    switch (op) {
      case BinaryOp::Add: return "+";
      case BinaryOp::Sub: return "-";
      case BinaryOp::Mul: return "*";
      case BinaryOp::Div: return "/";
      case BinaryOp::Rem: return "%";
      case BinaryOp::And: return "&";
      case BinaryOp::Or: return "|";
      case BinaryOp::Xor: return "^";
      case BinaryOp::Shl: return "<<";
      case BinaryOp::Shr: return ">>";
      case BinaryOp::Lt: return "<";
      case BinaryOp::Le: return "<=";
      case BinaryOp::Gt: return ">";
      case BinaryOp::Ge: return ">=";
      case BinaryOp::Eq: return "==";
      case BinaryOp::Ne: return "!=";
      case BinaryOp::LogAnd: return "&&";
      case BinaryOp::LogOr: return "||";
    }
    return "?";
}

std::string
exprToString(const Expr* e)
{
    if (!e)
        return "<null>";
    std::ostringstream os;
    switch (e->kind) {
      case ExprKind::IntLit:
        os << static_cast<const IntLitExpr*>(e)->value;
        break;
      case ExprKind::StrLit:
        os << '"' << static_cast<const StrLitExpr*>(e)->value << '"';
        break;
      case ExprKind::VarRef:
        os << static_cast<const VarRefExpr*>(e)->name;
        break;
      case ExprKind::Unary: {
        auto* u = static_cast<const UnaryExpr*>(e);
        os << "(" << unaryOpName(u->op) << exprToString(u->operand) << ")";
        break;
      }
      case ExprKind::Binary: {
        auto* b = static_cast<const BinaryExpr*>(e);
        os << "(" << exprToString(b->lhs) << " " << binaryOpName(b->op)
           << " " << exprToString(b->rhs) << ")";
        break;
      }
      case ExprKind::Assign: {
        auto* a = static_cast<const AssignExpr*>(e);
        os << "(" << exprToString(a->lhs) << " = " << exprToString(a->rhs)
           << ")";
        break;
      }
      case ExprKind::Index: {
        auto* i = static_cast<const IndexExpr*>(e);
        os << exprToString(i->base) << "[" << exprToString(i->index) << "]";
        break;
      }
      case ExprKind::Deref:
        os << "(*" << exprToString(static_cast<const DerefExpr*>(e)->pointer)
           << ")";
        break;
      case ExprKind::AddrOf:
        os << "(&"
           << exprToString(static_cast<const AddrOfExpr*>(e)->lvalue) << ")";
        break;
      case ExprKind::Call: {
        auto* c = static_cast<const CallExpr*>(e);
        os << c->callee << "(";
        for (size_t i = 0; i < c->args.size(); i++) {
            if (i)
                os << ", ";
            os << exprToString(c->args[i]);
        }
        os << ")";
        break;
      }
      case ExprKind::Cast: {
        auto* c = static_cast<const CastExpr*>(e);
        os << "(" << c->target->str() << ")" << exprToString(c->operand);
        break;
      }
      case ExprKind::Cond: {
        auto* c = static_cast<const CondExpr*>(e);
        os << "(" << exprToString(c->cond) << " ? "
           << exprToString(c->thenExpr) << " : "
           << exprToString(c->elseExpr) << ")";
        break;
      }
      case ExprKind::IncDec: {
        auto* i = static_cast<const IncDecExpr*>(e);
        const char* op = i->isIncrement ? "++" : "--";
        if (i->isPrefix)
            os << "(" << op << exprToString(i->lvalue) << ")";
        else
            os << "(" << exprToString(i->lvalue) << op << ")";
        break;
      }
    }
    return os.str();
}

} // namespace cash
