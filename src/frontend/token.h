/**
 * @file
 * Token definitions for the Mini-C lexer.
 *
 * Mini-C is the C subset consumed by this CASH reproduction: integer
 * scalar types, pointers, one-dimensional arrays, functions, structured
 * control flow, and the `#pragma independent` annotation from the paper.
 */
#ifndef CASH_FRONTEND_TOKEN_H
#define CASH_FRONTEND_TOKEN_H

#include <cstdint>
#include <string>

#include "support/diagnostics.h"

namespace cash {

/** Lexical token kinds. */
enum class Tok
{
    // Literals and identifiers
    Identifier, IntLiteral, CharLiteral, StringLiteral,

    // Keywords
    KwInt, KwUnsigned, KwChar, KwLong, KwVoid, KwConst, KwExtern,
    KwStatic, KwIf, KwElse, KwWhile, KwFor, KwDo, KwReturn, KwBreak,
    KwContinue, KwSigned,

    // Punctuation / operators
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Semicolon, Comma,
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    Shl, Shr,
    Lt, Gt, Le, Ge, EqEq, NotEq,
    AmpAmp, PipePipe,
    Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
    PercentAssign, ShlAssign, ShrAssign, AmpAssign, PipeAssign,
    CaretAssign,
    PlusPlus, MinusMinus,
    Question, Colon,

    // `#pragma independent p q` is lexed into a single token carrying
    // the raw pragma text; the parser interprets it.
    Pragma,

    EndOfFile,
};

/** Printable name of a token kind (for diagnostics). */
const char* tokName(Tok t);

/** One lexical token. */
struct Token
{
    Tok kind = Tok::EndOfFile;
    std::string text;       ///< Raw text (identifier spelling, pragma body).
    int64_t intValue = 0;   ///< Value for IntLiteral / CharLiteral.
    bool isUnsigned = false;///< Literal carried a 'u' suffix.
    SourceLoc loc;

    bool is(Tok t) const { return kind == t; }
};

} // namespace cash

#endif // CASH_FRONTEND_TOKEN_H
