/**
 * @file
 * Hand-written lexer for Mini-C.
 */
#ifndef CASH_FRONTEND_LEXER_H
#define CASH_FRONTEND_LEXER_H

#include <string>
#include <vector>

#include "frontend/token.h"

namespace cash {

/**
 * Converts a Mini-C source buffer into a token stream.
 *
 * Comments (both styles) are skipped.  `#pragma` lines become Pragma
 * tokens carrying the pragma body; any other preprocessor-style line is
 * rejected (Mini-C has no preprocessor).
 */
class Lexer
{
  public:
    explicit Lexer(std::string source);

    /** Lex the whole buffer; always ends with an EndOfFile token. */
    std::vector<Token> lexAll();

  private:
    Token next();
    char peek(int ahead = 0) const;
    char advance();
    bool match(char expected);
    void skipWhitespaceAndComments();
    Token makeToken(Tok kind);
    Token lexNumber();
    Token lexIdentifier();
    Token lexCharLiteral();
    Token lexStringLiteral();
    Token lexPragma();
    SourceLoc here() const;

    std::string src_;
    size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    SourceLoc tokenStart_;
};

} // namespace cash

#endif // CASH_FRONTEND_LEXER_H
