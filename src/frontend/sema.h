/**
 * @file
 * Semantic analysis for Mini-C.
 *
 * Resolves identifiers, type-checks and annotates every expression,
 * marks address-taken variables, decides which variables live in memory
 * versus virtual registers (the paper's flow-insensitive scalar
 * classification, §3.3), and materializes string literals as hidden
 * const global objects.
 */
#ifndef CASH_FRONTEND_SEMA_H
#define CASH_FRONTEND_SEMA_H

#include "frontend/ast.h"

namespace cash {

/**
 * Run semantic analysis over @p program in place.
 * Throws FatalError on semantic errors.
 */
void analyzeProgram(Program& program);

/**
 * Evaluate a constant integer expression (literals and arithmetic over
 * them).  Used for global initializers.  Throws FatalError if the
 * expression is not constant.
 */
int64_t evalConstExpr(const Expr* e);

} // namespace cash

#endif // CASH_FRONTEND_SEMA_H
