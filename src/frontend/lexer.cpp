#include "frontend/lexer.h"

#include <cctype>
#include <cstdint>
#include <map>

namespace cash {

const char*
tokName(Tok t)
{
    switch (t) {
      case Tok::Identifier: return "identifier";
      case Tok::IntLiteral: return "integer literal";
      case Tok::CharLiteral: return "character literal";
      case Tok::StringLiteral: return "string literal";
      case Tok::KwInt: return "'int'";
      case Tok::KwUnsigned: return "'unsigned'";
      case Tok::KwChar: return "'char'";
      case Tok::KwLong: return "'long'";
      case Tok::KwVoid: return "'void'";
      case Tok::KwConst: return "'const'";
      case Tok::KwExtern: return "'extern'";
      case Tok::KwStatic: return "'static'";
      case Tok::KwIf: return "'if'";
      case Tok::KwElse: return "'else'";
      case Tok::KwWhile: return "'while'";
      case Tok::KwFor: return "'for'";
      case Tok::KwDo: return "'do'";
      case Tok::KwReturn: return "'return'";
      case Tok::KwBreak: return "'break'";
      case Tok::KwContinue: return "'continue'";
      case Tok::KwSigned: return "'signed'";
      case Tok::LParen: return "'('";
      case Tok::RParen: return "')'";
      case Tok::LBrace: return "'{'";
      case Tok::RBrace: return "'}'";
      case Tok::LBracket: return "'['";
      case Tok::RBracket: return "']'";
      case Tok::Semicolon: return "';'";
      case Tok::Comma: return "','";
      case Tok::Plus: return "'+'";
      case Tok::Minus: return "'-'";
      case Tok::Star: return "'*'";
      case Tok::Slash: return "'/'";
      case Tok::Percent: return "'%'";
      case Tok::Amp: return "'&'";
      case Tok::Pipe: return "'|'";
      case Tok::Caret: return "'^'";
      case Tok::Tilde: return "'~'";
      case Tok::Bang: return "'!'";
      case Tok::Shl: return "'<<'";
      case Tok::Shr: return "'>>'";
      case Tok::Lt: return "'<'";
      case Tok::Gt: return "'>'";
      case Tok::Le: return "'<='";
      case Tok::Ge: return "'>='";
      case Tok::EqEq: return "'=='";
      case Tok::NotEq: return "'!='";
      case Tok::AmpAmp: return "'&&'";
      case Tok::PipePipe: return "'||'";
      case Tok::Assign: return "'='";
      case Tok::PlusAssign: return "'+='";
      case Tok::MinusAssign: return "'-='";
      case Tok::StarAssign: return "'*='";
      case Tok::SlashAssign: return "'/='";
      case Tok::PercentAssign: return "'%='";
      case Tok::ShlAssign: return "'<<='";
      case Tok::ShrAssign: return "'>>='";
      case Tok::AmpAssign: return "'&='";
      case Tok::PipeAssign: return "'|='";
      case Tok::CaretAssign: return "'^='";
      case Tok::PlusPlus: return "'++'";
      case Tok::MinusMinus: return "'--'";
      case Tok::Question: return "'?'";
      case Tok::Colon: return "':'";
      case Tok::Pragma: return "pragma";
      case Tok::EndOfFile: return "end of file";
    }
    return "<bad token>";
}

namespace {

const std::map<std::string, Tok> kKeywords = {
    {"int", Tok::KwInt},       {"unsigned", Tok::KwUnsigned},
    {"char", Tok::KwChar},     {"long", Tok::KwLong},
    {"void", Tok::KwVoid},     {"const", Tok::KwConst},
    {"extern", Tok::KwExtern}, {"static", Tok::KwStatic},
    {"if", Tok::KwIf},         {"else", Tok::KwElse},
    {"while", Tok::KwWhile},   {"for", Tok::KwFor},
    {"do", Tok::KwDo},         {"return", Tok::KwReturn},
    {"break", Tok::KwBreak},   {"continue", Tok::KwContinue},
    {"signed", Tok::KwSigned},
};

} // namespace

Lexer::Lexer(std::string source) : src_(std::move(source)) {}

std::vector<Token>
Lexer::lexAll()
{
    std::vector<Token> out;
    for (;;) {
        Token t = next();
        bool done = t.is(Tok::EndOfFile);
        out.push_back(std::move(t));
        if (done)
            break;
    }
    return out;
}

char
Lexer::peek(int ahead) const
{
    size_t p = pos_ + ahead;
    return p < src_.size() ? src_[p] : '\0';
}

char
Lexer::advance()
{
    char c = peek();
    if (c == '\0')
        return c;
    pos_++;
    if (c == '\n') {
        line_++;
        col_ = 1;
    } else {
        col_++;
    }
    return c;
}

bool
Lexer::match(char expected)
{
    if (peek() != expected)
        return false;
    advance();
    return true;
}

SourceLoc
Lexer::here() const
{
    return SourceLoc{line_, col_};
}

void
Lexer::skipWhitespaceAndComments()
{
    for (;;) {
        char c = peek();
        if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
            advance();
        } else if (c == '/' && peek(1) == '/') {
            while (peek() != '\n' && peek() != '\0')
                advance();
        } else if (c == '/' && peek(1) == '*') {
            SourceLoc start = here();
            advance();
            advance();
            while (!(peek() == '*' && peek(1) == '/')) {
                if (peek() == '\0')
                    fatalAt(start, "unterminated block comment");
                advance();
            }
            advance();
            advance();
        } else {
            return;
        }
    }
}

Token
Lexer::makeToken(Tok kind)
{
    Token t;
    t.kind = kind;
    t.loc = tokenStart_;
    return t;
}

Token
Lexer::lexNumber()
{
    Token t = makeToken(Tok::IntLiteral);
    // Accumulate unsigned with explicit overflow checks: a literal
    // like 99999999999999999999 must yield a diagnostic, not signed
    // wraparound (undefined behavior).
    uint64_t value = 0;
    auto append = [&](uint64_t base, uint64_t digit) {
        if (value > (UINT64_MAX - digit) / base)
            fatalAt(tokenStart_, "integer literal too large");
        value = value * base + digit;
    };
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
        advance();
        advance();
        bool any = false;
        while (std::isxdigit(static_cast<unsigned char>(peek()))) {
            char c = advance();
            uint64_t digit =
                std::isdigit(static_cast<unsigned char>(c))
                    ? static_cast<uint64_t>(c - '0')
                    : static_cast<uint64_t>(std::tolower(c) - 'a' +
                                            10);
            append(16, digit);
            any = true;
        }
        if (!any)
            fatalAt(tokenStart_, "malformed hex literal");
    } else {
        while (std::isdigit(static_cast<unsigned char>(peek())))
            append(10, static_cast<uint64_t>(advance() - '0'));
    }
    if (value > static_cast<uint64_t>(INT64_MAX))
        fatalAt(tokenStart_, "integer literal too large");
    // Accept (and record) integer suffixes.
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L') {
        if (peek() == 'u' || peek() == 'U')
            t.isUnsigned = true;
        advance();
    }
    t.intValue = static_cast<int64_t>(value);
    return t;
}

Token
Lexer::lexIdentifier()
{
    std::string text;
    while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
        text += advance();
    auto it = kKeywords.find(text);
    Token t = makeToken(it == kKeywords.end() ? Tok::Identifier : it->second);
    t.text = std::move(text);
    return t;
}

Token
Lexer::lexCharLiteral()
{
    advance(); // opening quote
    char c = advance();
    if (c == '\\') {
        char esc = advance();
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '0': c = '\0'; break;
          case '\\': c = '\\'; break;
          case '\'': c = '\''; break;
          default: fatalAt(tokenStart_, "unknown escape in char literal");
        }
    }
    if (!match('\''))
        fatalAt(tokenStart_, "unterminated character literal");
    Token t = makeToken(Tok::CharLiteral);
    t.intValue = static_cast<unsigned char>(c);
    return t;
}

Token
Lexer::lexStringLiteral()
{
    advance(); // opening quote
    std::string text;
    while (peek() != '"') {
        if (peek() == '\0' || peek() == '\n')
            fatalAt(tokenStart_, "unterminated string literal");
        char c = advance();
        if (c == '\\') {
            char esc = advance();
            switch (esc) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case '0': c = '\0'; break;
              case '\\': c = '\\'; break;
              case '"': c = '"'; break;
              default: fatalAt(tokenStart_, "unknown escape in string");
            }
        }
        text += c;
    }
    advance(); // closing quote
    Token t = makeToken(Tok::StringLiteral);
    t.text = std::move(text);
    return t;
}

Token
Lexer::lexPragma()
{
    // '#' already seen; collect the rest of the line.
    std::string body;
    while (peek() != '\n' && peek() != '\0')
        body += advance();
    Token t = makeToken(Tok::Pragma);
    t.text = body;
    return t;
}

Token
Lexer::next()
{
    skipWhitespaceAndComments();
    tokenStart_ = here();
    char c = peek();
    if (c == '\0')
        return makeToken(Tok::EndOfFile);
    if (std::isdigit(static_cast<unsigned char>(c)))
        return lexNumber();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
        return lexIdentifier();
    if (c == '\'')
        return lexCharLiteral();
    if (c == '"')
        return lexStringLiteral();
    if (c == '#') {
        advance();
        return lexPragma();
    }

    advance();
    switch (c) {
      case '(': return makeToken(Tok::LParen);
      case ')': return makeToken(Tok::RParen);
      case '{': return makeToken(Tok::LBrace);
      case '}': return makeToken(Tok::RBrace);
      case '[': return makeToken(Tok::LBracket);
      case ']': return makeToken(Tok::RBracket);
      case ';': return makeToken(Tok::Semicolon);
      case ',': return makeToken(Tok::Comma);
      case '?': return makeToken(Tok::Question);
      case ':': return makeToken(Tok::Colon);
      case '~': return makeToken(Tok::Tilde);
      case '+':
        if (match('+')) return makeToken(Tok::PlusPlus);
        if (match('=')) return makeToken(Tok::PlusAssign);
        return makeToken(Tok::Plus);
      case '-':
        if (match('-')) return makeToken(Tok::MinusMinus);
        if (match('=')) return makeToken(Tok::MinusAssign);
        return makeToken(Tok::Minus);
      case '*':
        if (match('=')) return makeToken(Tok::StarAssign);
        return makeToken(Tok::Star);
      case '/':
        if (match('=')) return makeToken(Tok::SlashAssign);
        return makeToken(Tok::Slash);
      case '%':
        if (match('=')) return makeToken(Tok::PercentAssign);
        return makeToken(Tok::Percent);
      case '&':
        if (match('&')) return makeToken(Tok::AmpAmp);
        if (match('=')) return makeToken(Tok::AmpAssign);
        return makeToken(Tok::Amp);
      case '|':
        if (match('|')) return makeToken(Tok::PipePipe);
        if (match('=')) return makeToken(Tok::PipeAssign);
        return makeToken(Tok::Pipe);
      case '^':
        if (match('=')) return makeToken(Tok::CaretAssign);
        return makeToken(Tok::Caret);
      case '!':
        if (match('=')) return makeToken(Tok::NotEq);
        return makeToken(Tok::Bang);
      case '=':
        if (match('=')) return makeToken(Tok::EqEq);
        return makeToken(Tok::Assign);
      case '<':
        if (match('<')) {
            if (match('=')) return makeToken(Tok::ShlAssign);
            return makeToken(Tok::Shl);
        }
        if (match('=')) return makeToken(Tok::Le);
        return makeToken(Tok::Lt);
      case '>':
        if (match('>')) {
            if (match('=')) return makeToken(Tok::ShrAssign);
            return makeToken(Tok::Shr);
        }
        if (match('=')) return makeToken(Tok::Ge);
        return makeToken(Tok::Gt);
      default:
        fatalAt(tokenStart_,
                std::string("unexpected character '") + c + "'");
    }
}

} // namespace cash
