#include "frontend/layout.h"

#include "frontend/sema.h"
#include "support/diagnostics.h"

namespace cash {

namespace {

uint32_t
alignUp(uint32_t v, uint32_t a)
{
    return (v + a - 1) & ~(a - 1);
}

/** Concrete storage size of a declared variable. */
uint32_t
storageSize(const TypePtr& t)
{
    if (t->isArray() && t->arraySize == 0) {
        // Extern array of unknown extent: give it simulated backing.
        return static_cast<uint32_t>(t->element->sizeBytes() *
                                     MemoryLayout::kExternArrayElems);
    }
    int64_t s = t->sizeBytes();
    CASH_ASSERT(s > 0, "object with zero size");
    return static_cast<uint32_t>(s);
}

} // namespace

void
MemoryLayout::build(Program& program)
{
    objects_.clear();
    frameSizes_.clear();
    globalTop_ = kGlobalBase;

    for (VarDecl* g : program.globals)
        placeGlobal(g);

    image_.assign(globalTop_ - kGlobalBase, 0);
    for (const MemObject& obj : objects_)
        if (obj.isGlobal)
            writeInit(obj, obj.decl);

    // Frame layout per function.
    for (FuncDecl* f : program.functions) {
        if (!f->body)
            continue;
        uint32_t offset = 0;
        for (VarDecl* l : f->locals) {
            if (!l->inMemory)
                continue;
            uint32_t size = storageSize(l->type);
            uint32_t align = l->type->accessSize();
            offset = alignUp(offset, align);
            MemObject obj;
            obj.id = static_cast<int>(objects_.size());
            obj.name = f->name + "." + l->name;
            obj.decl = l;
            obj.func = f;
            obj.address = offset;
            obj.size = size;
            obj.isGlobal = false;
            obj.isConst = l->type->isConst;
            l->objectId = obj.id;
            objects_.push_back(obj);
            offset += size;
        }
        frameSizes_[f] = alignUp(offset, 4);
    }
}

void
MemoryLayout::placeGlobal(VarDecl* g)
{
    uint32_t size = storageSize(g->type);
    uint32_t align = g->type->accessSize();
    globalTop_ = alignUp(globalTop_, align);

    MemObject obj;
    obj.id = static_cast<int>(objects_.size());
    obj.name = g->name;
    obj.decl = g;
    obj.address = globalTop_;
    obj.size = size;
    obj.isGlobal = true;
    obj.isConst = g->type->isConst;
    g->objectId = obj.id;
    objects_.push_back(obj);

    globalTop_ += size;
}

void
MemoryLayout::storeBytes(uint32_t addr, int64_t value, int size)
{
    uint32_t off = addr - kGlobalBase;
    CASH_ASSERT(off + size <= image_.size(), "initializer out of range");
    for (int i = 0; i < size; i++)
        image_[off + i] = static_cast<uint8_t>((value >> (8 * i)) & 0xff);
}

void
MemoryLayout::writeInit(const MemObject& obj, const VarDecl* g)
{
    if (!g)
        return;
    if (g->init) {
        int64_t v;
        if (g->init->kind == ExprKind::VarRef) {
            // `int* p = arr;` — pointer to a global array.
            const VarDecl* target =
                static_cast<const VarRefExpr*>(g->init)->decl;
            if (!target || target->objectId < 0)
                fatalAt(g->loc, "global pointer initializer must name "
                                "a global object");
            v = objects_.at(target->objectId).address;
        } else {
            v = evalConstExpr(g->init);
        }
        storeBytes(obj.address, v, g->type->accessSize());
    }
    if (!g->initList.empty()) {
        if (!g->type->isArray())
            fatalAt(g->loc, "initializer list on non-array global");
        int esize = g->type->element->accessSize();
        for (size_t i = 0; i < g->initList.size(); i++) {
            int64_t v = evalConstExpr(g->initList[i]);
            storeBytes(obj.address + static_cast<uint32_t>(i * esize),
                       v, esize);
        }
    }
}

uint32_t
MemoryLayout::frameSize(const FuncDecl* f) const
{
    auto it = frameSizes_.find(f);
    return it == frameSizes_.end() ? 0 : it->second;
}

int
MemoryLayout::findGlobal(const std::string& name) const
{
    for (const MemObject& o : objects_)
        if (o.isGlobal && o.name == name)
            return o.id;
    return -1;
}

} // namespace cash
