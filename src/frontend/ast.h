/**
 * @file
 * Abstract syntax tree for Mini-C.
 *
 * All nodes are owned by an AstContext arena; the tree itself holds raw
 * pointers.  Semantic analysis (sema.h) annotates expressions with types
 * and resolves identifier references in place.
 */
#ifndef CASH_FRONTEND_AST_H
#define CASH_FRONTEND_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace cash {

// ---------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------

/** Scalar/aggregate type kinds supported by Mini-C. */
enum class TypeKind
{
    Void,
    Int,     ///< signed 32-bit
    UInt,    ///< unsigned 32-bit
    Char,    ///< signed 8-bit
    UChar,   ///< unsigned 8-bit
    Pointer,
    Array,
};

/**
 * A Mini-C type.  Types are immutable once built; they are created via
 * the static factories and shared freely.
 */
class Type
{
  public:
    TypeKind kind = TypeKind::Int;
    std::shared_ptr<Type> element;  ///< Pointee / array element.
    int64_t arraySize = 0;          ///< 0 = unknown extent (extern arrays).
    bool isConst = false;           ///< Declared const (immutable object).

    static std::shared_ptr<Type> makeVoid();
    static std::shared_ptr<Type> makeInt();
    static std::shared_ptr<Type> makeUInt();
    static std::shared_ptr<Type> makeChar();
    static std::shared_ptr<Type> makeUChar();
    static std::shared_ptr<Type> makePointer(std::shared_ptr<Type> pointee);
    static std::shared_ptr<Type> makeArray(std::shared_ptr<Type> elem,
                                           int64_t count);
    /** Copy of @p t with isConst set. */
    static std::shared_ptr<Type> makeConst(std::shared_ptr<Type> t);

    bool isVoid() const { return kind == TypeKind::Void; }
    bool isPointer() const { return kind == TypeKind::Pointer; }
    bool isArray() const { return kind == TypeKind::Array; }
    bool isInteger() const
    {
        return kind == TypeKind::Int || kind == TypeKind::UInt ||
               kind == TypeKind::Char || kind == TypeKind::UChar;
    }
    bool isUnsignedInt() const
    {
        return kind == TypeKind::UInt || kind == TypeKind::UChar;
    }
    /** Size in bytes (pointers are 4 bytes: a 32-bit address space). */
    int64_t sizeBytes() const;
    /** Size of the value loaded/stored when accessing this scalar. */
    int accessSize() const;

    std::string str() const;
};

using TypePtr = std::shared_ptr<Type>;

/** Structural type equality. */
bool sameType(const TypePtr& a, const TypePtr& b);

// ---------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------

enum class ExprKind
{
    IntLit, StrLit, VarRef, Unary, Binary, Assign, Index, Deref,
    AddrOf, Call, Cast, Cond, IncDec,
};

enum class UnaryOp { Neg, Not, BitNot, Plus };

enum class BinaryOp
{
    Add, Sub, Mul, Div, Rem,
    And, Or, Xor, Shl, Shr,
    Lt, Le, Gt, Ge, Eq, Ne,
    LogAnd, LogOr,
};

/** Compound-assignment flavors; Assign means plain '='. */
enum class AssignOp
{
    Assign, Add, Sub, Mul, Div, Rem, And, Or, Xor, Shl, Shr,
};

struct VarDecl;
struct FuncDecl;

/** Base class of all expressions. */
struct Expr
{
    ExprKind kind;
    SourceLoc loc;
    TypePtr type;  ///< Filled in by sema.

    explicit Expr(ExprKind k) : kind(k) {}
    virtual ~Expr() = default;
};

struct IntLitExpr : Expr
{
    int64_t value = 0;
    bool isUnsignedLit = false;
    IntLitExpr() : Expr(ExprKind::IntLit) {}
};

/** A string literal; sema materializes it as a const char array object. */
struct StrLitExpr : Expr
{
    std::string value;
    VarDecl* object = nullptr;  ///< Hidden const-char-array global (sema).
    StrLitExpr() : Expr(ExprKind::StrLit) {}
};

struct VarRefExpr : Expr
{
    std::string name;
    VarDecl* decl = nullptr;  ///< Resolved by sema.
    VarRefExpr() : Expr(ExprKind::VarRef) {}
};

struct UnaryExpr : Expr
{
    UnaryOp op = UnaryOp::Neg;
    Expr* operand = nullptr;
    UnaryExpr() : Expr(ExprKind::Unary) {}
};

struct BinaryExpr : Expr
{
    BinaryOp op = BinaryOp::Add;
    Expr* lhs = nullptr;
    Expr* rhs = nullptr;
    BinaryExpr() : Expr(ExprKind::Binary) {}
};

struct AssignExpr : Expr
{
    AssignOp op = AssignOp::Assign;
    Expr* lhs = nullptr;  ///< An lvalue expression.
    Expr* rhs = nullptr;
    AssignExpr() : Expr(ExprKind::Assign) {}
};

struct IndexExpr : Expr
{
    Expr* base = nullptr;
    Expr* index = nullptr;
    IndexExpr() : Expr(ExprKind::Index) {}
};

struct DerefExpr : Expr
{
    Expr* pointer = nullptr;
    DerefExpr() : Expr(ExprKind::Deref) {}
};

struct AddrOfExpr : Expr
{
    Expr* lvalue = nullptr;
    AddrOfExpr() : Expr(ExprKind::AddrOf) {}
};

struct CallExpr : Expr
{
    std::string callee;
    std::vector<Expr*> args;
    FuncDecl* decl = nullptr;  ///< Resolved by sema.
    CallExpr() : Expr(ExprKind::Call) {}
};

struct CastExpr : Expr
{
    TypePtr target;
    Expr* operand = nullptr;
    CastExpr() : Expr(ExprKind::Cast) {}
};

struct CondExpr : Expr
{
    Expr* cond = nullptr;
    Expr* thenExpr = nullptr;
    Expr* elseExpr = nullptr;
    CondExpr() : Expr(ExprKind::Cond) {}
};

/** ++x / x++ / --x / x-- */
struct IncDecExpr : Expr
{
    Expr* lvalue = nullptr;
    bool isIncrement = true;
    bool isPrefix = true;
    IncDecExpr() : Expr(ExprKind::IncDec) {}
};

// ---------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------

enum class StmtKind
{
    Expr, Decl, If, While, DoWhile, For, Return, Break, Continue,
    Block, Empty,
};

struct Stmt
{
    StmtKind kind;
    SourceLoc loc;
    explicit Stmt(StmtKind k) : kind(k) {}
    virtual ~Stmt() = default;
};

struct ExprStmt : Stmt
{
    Expr* expr = nullptr;
    ExprStmt() : Stmt(StmtKind::Expr) {}
};

struct DeclStmt : Stmt
{
    std::vector<VarDecl*> decls;
    DeclStmt() : Stmt(StmtKind::Decl) {}
};

struct IfStmt : Stmt
{
    Expr* cond = nullptr;
    Stmt* thenStmt = nullptr;
    Stmt* elseStmt = nullptr;  ///< May be null.
    IfStmt() : Stmt(StmtKind::If) {}
};

struct WhileStmt : Stmt
{
    Expr* cond = nullptr;
    Stmt* body = nullptr;
    WhileStmt() : Stmt(StmtKind::While) {}
};

struct DoWhileStmt : Stmt
{
    Stmt* body = nullptr;
    Expr* cond = nullptr;
    DoWhileStmt() : Stmt(StmtKind::DoWhile) {}
};

struct ForStmt : Stmt
{
    Stmt* init = nullptr;   ///< ExprStmt, DeclStmt or null.
    Expr* cond = nullptr;   ///< Null means "true".
    Expr* step = nullptr;   ///< May be null.
    Stmt* body = nullptr;
    ForStmt() : Stmt(StmtKind::For) {}
};

struct ReturnStmt : Stmt
{
    Expr* value = nullptr;  ///< Null for void return.
    ReturnStmt() : Stmt(StmtKind::Return) {}
};

struct BreakStmt : Stmt
{
    BreakStmt() : Stmt(StmtKind::Break) {}
};

struct ContinueStmt : Stmt
{
    ContinueStmt() : Stmt(StmtKind::Continue) {}
};

struct BlockStmt : Stmt
{
    std::vector<Stmt*> stmts;
    BlockStmt() : Stmt(StmtKind::Block) {}
};

struct EmptyStmt : Stmt
{
    EmptyStmt() : Stmt(StmtKind::Empty) {}
};

// ---------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------

enum class Storage { Global, Local, Param };

/** A variable declaration (global, local or parameter). */
struct VarDecl
{
    std::string name;
    TypePtr type;
    Storage storage = Storage::Local;
    Expr* init = nullptr;                  ///< Scalar initializer.
    std::vector<Expr*> initList;           ///< Array initializer list.
    bool isExtern = false;
    SourceLoc loc;

    // --- Filled in by sema / layout ---
    bool addressTaken = false;  ///< &x appears somewhere.
    bool inMemory = false;      ///< Lives in memory (vs. a virtual register).
    int objectId = -1;          ///< Memory-object id when inMemory.
    int varId = -1;             ///< Dense per-function id for register vars.
};

/** A `#pragma independent p q` annotation (paper §7.1). */
struct PragmaIndependent
{
    std::string funcName;  ///< Enclosing function ("" = file scope).
    std::string first;
    std::string second;
    SourceLoc loc;
};

/** A function definition. */
struct FuncDecl
{
    std::string name;
    TypePtr returnType;
    std::vector<VarDecl*> params;
    BlockStmt* body = nullptr;  ///< Null for a bare declaration/prototype.
    SourceLoc loc;

    // --- Filled in by sema ---
    std::vector<VarDecl*> locals;  ///< All block-scope declarations.
    int numRegisterVars = 0;       ///< Count of varId-numbered scalars.
};

/**
 * Arena owning every AST node of one translation unit.
 */
class AstContext
{
  public:
    template <typename T, typename... Args>
    T*
    make(Args&&... args)
    {
        auto node = std::make_unique<T>(std::forward<Args>(args)...);
        T* raw = node.get();
        owned_.push_back(std::move(node));
        return raw;
    }

    VarDecl*
    makeVar()
    {
        auto node = std::make_unique<VarDecl>();
        VarDecl* raw = node.get();
        ownedVars_.push_back(std::move(node));
        return raw;
    }

    FuncDecl*
    makeFunc()
    {
        auto node = std::make_unique<FuncDecl>();
        FuncDecl* raw = node.get();
        ownedFuncs_.push_back(std::move(node));
        return raw;
    }

  private:
    // shared_ptr<void> captures the concrete deleter at make<T>() time,
    // so heterogeneous node types destruct correctly.
    std::vector<std::shared_ptr<void>> owned_;
    std::vector<std::unique_ptr<VarDecl>> ownedVars_;
    std::vector<std::unique_ptr<FuncDecl>> ownedFuncs_;
};

/** A parsed translation unit. */
struct Program
{
    std::shared_ptr<AstContext> arena = std::make_shared<AstContext>();
    std::vector<VarDecl*> globals;
    std::vector<FuncDecl*> functions;
    std::vector<PragmaIndependent> pragmas;

    FuncDecl* findFunction(const std::string& name) const;
    VarDecl* findGlobal(const std::string& name) const;
};

/** Printable operator spellings (for dumps and diagnostics). */
const char* unaryOpName(UnaryOp op);
const char* binaryOpName(BinaryOp op);

/** Pretty-print an expression (mostly for tests and dumps). */
std::string exprToString(const Expr* e);

} // namespace cash

#endif // CASH_FRONTEND_AST_H
