/**
 * @file
 * A tiny named-counter statistics registry.
 *
 * Compiler passes and the dataflow simulator record named counters here
 * (e.g. "opt.dead_store.removed", "sim.l1.misses").  Benchmark harnesses
 * read them back to regenerate the paper's tables and figures.
 */
#ifndef CASH_SUPPORT_STATS_H
#define CASH_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <string>

namespace cash {

/** A bag of named 64-bit counters. */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void add(const std::string& name, int64_t delta = 1);

    /** Set counter @p name to @p value. */
    void set(const std::string& name, int64_t value);

    /** Read counter @p name; missing counters read as zero. */
    int64_t get(const std::string& name) const;

    /** True when the counter exists. */
    bool has(const std::string& name) const;

    /** Remove all counters. */
    void clear();

    /** Merge all counters of @p other into this set (summing). */
    void merge(const StatSet& other);

    /**
     * Counters that changed since snapshot @p before, each holding the
     * change (this minus before).  Unchanged counters are omitted.
     */
    StatSet diff(const StatSet& before) const;

    const std::map<std::string, int64_t>& all() const { return counters_; }

    /** Render as "name = value" lines, sorted by name. */
    std::string str() const;

  private:
    std::map<std::string, int64_t> counters_;
};

} // namespace cash

#endif // CASH_SUPPORT_STATS_H
