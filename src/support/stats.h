/**
 * @file
 * A tiny named-counter statistics registry.
 *
 * Compiler passes and the dataflow simulator record named counters here
 * (e.g. "opt.dead_store.removed", "sim.l1.misses").  Benchmark harnesses
 * read them back to regenerate the paper's tables and figures.
 *
 * Counters come in two flavors with different merge semantics:
 *   - **accumulators**, written with add(): merge() sums them;
 *   - **gauges**, written with set() (e.g. "ir.static.loads",
 *     "sim.act.peakLive"): merge() takes the *incoming* value, so
 *     merging per-function StatSets in function-declaration order
 *     yields a deterministic last-writer-wins result at any thread
 *     count.
 * A counter that has ever been set() stays a gauge (later add()s
 * modify its value but not its merge behavior).
 *
 * Thread ownership: a StatSet is NOT internally synchronized.  Each
 * compilation worker owns a private StatSet and records into it
 * exclusively; after the workers are joined, the owner merges the
 * per-worker sets into the result set in deterministic (function
 * declaration) order on a single thread.  Never share one StatSet
 * between concurrently running workers.
 */
#ifndef CASH_SUPPORT_STATS_H
#define CASH_SUPPORT_STATS_H

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace cash {

/** A bag of named 64-bit counters. */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void add(const std::string& name, int64_t delta = 1);

    /** Set counter @p name to @p value, marking it as a gauge. */
    void set(const std::string& name, int64_t value);

    /** Read counter @p name; missing counters read as zero. */
    int64_t get(const std::string& name) const;

    /** True when the counter exists. */
    bool has(const std::string& name) const;

    /** True when @p name was written with set() (merge = last writer). */
    bool isGauge(const std::string& name) const;

    /** Remove all counters. */
    void clear();

    /**
     * Merge all counters of @p other into this set: accumulators sum,
     * gauges take @p other's value (last writer wins; call in
     * deterministic order — see the thread-ownership note above).
     */
    void merge(const StatSet& other);

    /**
     * Counters that changed since snapshot @p before, each holding the
     * change (this minus before).  Unchanged counters are omitted.
     */
    StatSet diff(const StatSet& before) const;

    const std::map<std::string, int64_t>& all() const { return counters_; }

    /** Render as "name = value" lines, sorted by name. */
    std::string str() const;

  private:
    std::map<std::string, int64_t> counters_;
    std::set<std::string> gauges_;
};

} // namespace cash

#endif // CASH_SUPPORT_STATS_H
