#include "support/stats.h"

#include <sstream>

namespace cash {

void
StatSet::add(const std::string& name, int64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::set(const std::string& name, int64_t value)
{
    counters_[name] = value;
    gauges_.insert(name);
}

bool
StatSet::isGauge(const std::string& name) const
{
    return gauges_.count(name) != 0;
}

int64_t
StatSet::get(const std::string& name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

bool
StatSet::has(const std::string& name) const
{
    return counters_.count(name) != 0;
}

void
StatSet::clear()
{
    counters_.clear();
    gauges_.clear();
}

void
StatSet::merge(const StatSet& other)
{
    for (const auto& [k, v] : other.counters_) {
        if (other.isGauge(k)) {
            counters_[k] = v;
            gauges_.insert(k);
        } else {
            counters_[k] += v;
        }
    }
}

StatSet
StatSet::diff(const StatSet& before) const
{
    StatSet d;
    for (const auto& [k, v] : counters_)
        if (v != before.get(k))
            d.set(k, v - before.get(k));
    for (const auto& [k, v] : before.counters_)
        if (!has(k))
            d.set(k, -v);
    return d;
}

std::string
StatSet::str() const
{
    std::ostringstream os;
    for (const auto& [k, v] : counters_)
        os << k << " = " << v << "\n";
    return os.str();
}

} // namespace cash
