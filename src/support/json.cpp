#include "support/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/trace.h"

namespace cash {

Json
Json::boolean(bool v)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.bool_ = v;
    return j;
}

Json
Json::number(int64_t v)
{
    Json j;
    j.kind_ = Kind::Int;
    j.int_ = v;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j.kind_ = Kind::Double;
    j.dbl_ = v;
    return j;
}

Json
Json::string(std::string v)
{
    Json j;
    j.kind_ = Kind::String;
    j.str_ = std::move(v);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

int64_t
Json::asInt(int64_t fallback) const
{
    if (kind_ == Kind::Int)
        return int_;
    if (kind_ == Kind::Double)
        return static_cast<int64_t>(dbl_);
    return fallback;
}

double
Json::asDouble(double fallback) const
{
    if (kind_ == Kind::Double)
        return dbl_;
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    return fallback;
}

const Json*
Json::get(const std::string& key) const
{
    for (const Member& m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

std::string
Json::getString(const std::string& key, const std::string& fallback) const
{
    const Json* v = get(key);
    return v && v->isString() ? v->asString() : fallback;
}

int64_t
Json::getInt(const std::string& key, int64_t fallback) const
{
    const Json* v = get(key);
    return v && v->isNumber() ? v->asInt(fallback) : fallback;
}

bool
Json::getBool(const std::string& key, bool fallback) const
{
    const Json* v = get(key);
    return v && v->isBool() ? v->asBool(fallback) : fallback;
}

void
Json::push(Json v)
{
    kind_ = Kind::Array;
    items_.push_back(std::move(v));
}

void
Json::set(const std::string& key, Json v)
{
    kind_ = Kind::Object;
    members_.emplace_back(key, std::move(v));
}

std::string
Json::dump() const
{
    switch (kind_) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return bool_ ? "true" : "false";
      case Kind::Int:
        return std::to_string(int_);
      case Kind::Double: {
        if (!std::isfinite(dbl_))
            return "null"; // JSON has no Inf/NaN.
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", dbl_);
        return buf;
      }
      case Kind::String:
        return "\"" + jsonEscape(str_) + "\"";
      case Kind::Array: {
        std::string out = "[";
        for (size_t i = 0; i < items_.size(); i++)
            out += (i ? "," : "") + items_[i].dump();
        return out + "]";
      }
      case Kind::Object: {
        std::string out = "{";
        for (size_t i = 0; i < members_.size(); i++) {
            out += (i ? ",\"" : "\"") + jsonEscape(members_[i].first) +
                   "\":" + members_[i].second.dump();
        }
        return out + "}";
      }
    }
    return "null";
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace {

struct Parser
{
    const std::string& text;
    size_t pos = 0;
    int maxDepth;
    std::string error; // first error, with byte offset

    explicit Parser(const std::string& t, int depth)
        : text(t), maxDepth(depth)
    {
    }

    bool
    fail(const std::string& msg)
    {
        if (error.empty())
            error = msg + " at byte " + std::to_string(pos);
        return false;
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            pos++;
    }

    bool
    consume(char c)
    {
        if (pos < text.size() && text[pos] == c) {
            pos++;
            return true;
        }
        return false;
    }

    bool
    literal(const char* word, size_t n)
    {
        if (text.compare(pos, n, word) != 0)
            return fail("invalid literal");
        pos += n;
        return true;
    }

    static void
    appendUtf8(std::string& out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    hex4(uint32_t* out)
    {
        if (pos + 4 > text.size())
            return fail("truncated \\u escape");
        uint32_t v = 0;
        for (int i = 0; i < 4; i++) {
            char c = text[pos + i];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        pos += 4;
        *out = v;
        return true;
    }

    bool
    parseString(std::string* out)
    {
        if (!consume('"'))
            return fail("expected string");
        out->clear();
        while (true) {
            if (pos >= text.size())
                return fail("unterminated string");
            unsigned char c = static_cast<unsigned char>(text[pos]);
            if (c == '"') {
                pos++;
                return true;
            }
            if (c == '\\') {
                pos++;
                if (pos >= text.size())
                    return fail("unterminated escape");
                char e = text[pos++];
                switch (e) {
                  case '"': *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/': *out += '/'; break;
                  case 'b': *out += '\b'; break;
                  case 'f': *out += '\f'; break;
                  case 'n': *out += '\n'; break;
                  case 'r': *out += '\r'; break;
                  case 't': *out += '\t'; break;
                  case 'u': {
                      uint32_t cp = 0;
                      if (!hex4(&cp))
                          return false;
                      if (cp >= 0xD800 && cp <= 0xDBFF) {
                          // High surrogate: require a low one.
                          if (!(consume('\\') && consume('u')))
                              return fail("lone high surrogate");
                          uint32_t lo = 0;
                          if (!hex4(&lo))
                              return false;
                          if (lo < 0xDC00 || lo > 0xDFFF)
                              return fail("bad low surrogate");
                          cp = 0x10000 + ((cp - 0xD800) << 10) +
                               (lo - 0xDC00);
                      } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
                          return fail("lone low surrogate");
                      }
                      appendUtf8(*out, cp);
                      break;
                  }
                  default:
                      return fail("bad escape character");
                }
            } else if (c < 0x20) {
                return fail("raw control character in string");
            } else {
                *out += static_cast<char>(c);
                pos++;
            }
        }
    }

    bool
    parseNumber(Json* out)
    {
        size_t start = pos;
        if (consume('-')) {
        }
        if (pos >= text.size() ||
            !std::isdigit(static_cast<unsigned char>(text[pos])))
            return fail("expected digit");
        if (text[pos] == '0') {
            pos++; // a leading zero must stand alone (RFC 8259)
        } else {
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                pos++;
        }
        bool integral = true;
        if (pos < text.size() && text[pos] == '.') {
            integral = false;
            pos++;
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("expected fraction digit");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                pos++;
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            integral = false;
            pos++;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                pos++;
            if (pos >= text.size() ||
                !std::isdigit(static_cast<unsigned char>(text[pos])))
                return fail("expected exponent digit");
            while (pos < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[pos])))
                pos++;
        }
        std::string lit = text.substr(start, pos - start);
        if (integral) {
            errno = 0;
            char* end = nullptr;
            long long v = std::strtoll(lit.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0') {
                *out = Json::number(static_cast<int64_t>(v));
                return true;
            }
            // Out of int64 range: fall through to double.
        }
        *out = Json::number(std::strtod(lit.c_str(), nullptr));
        return true;
    }

    bool
    parseValue(Json* out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            pos++;
            Json obj = Json::object();
            skipWs();
            if (consume('}')) {
                *out = std::move(obj);
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(&key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                Json v;
                if (!parseValue(&v, depth + 1))
                    return false;
                obj.set(key, std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    break;
                return fail("expected ',' or '}'");
            }
            *out = std::move(obj);
            return true;
        }
        if (c == '[') {
            pos++;
            Json arr = Json::array();
            skipWs();
            if (consume(']')) {
                *out = std::move(arr);
                return true;
            }
            while (true) {
                Json v;
                if (!parseValue(&v, depth + 1))
                    return false;
                arr.push(std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    break;
                return fail("expected ',' or ']'");
            }
            *out = std::move(arr);
            return true;
        }
        if (c == '"') {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Json::string(std::move(s));
            return true;
        }
        if (c == 't')
            return literal("true", 4) && (*out = Json::boolean(true), true);
        if (c == 'f')
            return literal("false", 5) &&
                   (*out = Json::boolean(false), true);
        if (c == 'n')
            return literal("null", 4) && (*out = Json::null(), true);
        if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
            return parseNumber(out);
        return fail("unexpected character");
    }
};

} // namespace

Status
Json::parse(const std::string& text, Json* out, int maxDepth)
{
    *out = Json();
    Parser p(text, maxDepth);
    Json v;
    if (!p.parseValue(&v, 0))
        return Status::error(ErrorCode::ParseError,
                             "json: " + p.error);
    p.skipWs();
    if (p.pos != text.size())
        return Status::error(ErrorCode::ParseError,
                             "json: trailing garbage at byte " +
                                 std::to_string(p.pos));
    *out = std::move(v);
    return Status::ok();
}

} // namespace cash
