#include "support/diagnostics.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace cash {

int traceLevel = 0;

const char*
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok: return "ok";
      case ErrorCode::ParseError: return "parse_error";
      case ErrorCode::SemaError: return "sema_error";
      case ErrorCode::VerifyError: return "verify_error";
      case ErrorCode::PassError: return "pass_error";
      case ErrorCode::Deadlock: return "deadlock";
      case ErrorCode::EventLimit: return "event_limit";
      case ErrorCode::StackOverflow: return "stack_overflow";
      case ErrorCode::MissingGraph: return "missing_graph";
      case ErrorCode::BadFaultSpec: return "bad_fault_spec";
      case ErrorCode::AnalysisError: return "analysis_error";
      case ErrorCode::InternalError: return "internal_error";
    }
    return "?";
}

std::string
Status::str() const
{
    if (isOk())
        return "ok";
    return std::string(errorCodeName(code_)) + ": " + message_;
}

std::string
SourceLoc::str() const
{
    if (!valid())
        return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
}

void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

void
fatalAt(SourceLoc loc, const std::string& msg)
{
    throw FatalError(loc.str() + ": " + msg);
}

void
panic(const std::string& msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
warn(const std::string& msg)
{
    std::cerr << "warning: " << msg << std::endl;
}

void
trace(int level, const std::string& msg)
{
    if (traceLevel >= level)
        std::cerr << "trace: " << msg << std::endl;
}

} // namespace cash
