#include "support/diagnostics.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

namespace cash {

int traceLevel = 0;

std::string
SourceLoc::str() const
{
    if (!valid())
        return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(column);
}

void
fatal(const std::string& msg)
{
    throw FatalError(msg);
}

void
fatalAt(SourceLoc loc, const std::string& msg)
{
    throw FatalError(loc.str() + ": " + msg);
}

void
panic(const std::string& msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
warn(const std::string& msg)
{
    std::cerr << "warning: " << msg << std::endl;
}

void
trace(int level, const std::string& msg)
{
    if (traceLevel >= level)
        std::cerr << "trace: " << msg << std::endl;
}

} // namespace cash
