/**
 * @file
 * Deterministic fault injection for the CASH pipeline.
 *
 * A FaultPlan is a small set of named injection points, parsed from a
 * spec string (`cashc --inject=...` or the CASH_INJECT environment
 * variable) and threaded through CompileOptions / the simulator.  All
 * injection decisions are keyed on stable identities — (function,
 * pass, round) for compiler faults, the event sequence number for
 * simulator faults — never on wall clock or thread interleaving, so a
 * plan reproduces the same failure at any `-j` and on every run.
 *
 * Spec syntax (see docs/ROBUSTNESS.md):
 *
 *   spec  := fault (';' fault)*
 *   fault := point [':' key '=' value (',' key '=' value)*]
 *
 * Points:
 *   pass.throw          throw inside a pass (keys: pass, func, round)
 *   graph.corrupt-token corrupt a token edge right after a pass runs
 *                       (keys: pass, func, round, seed)
 *   sim.drop-event      silently drop one simulator delivery
 *                       (keys: seq)
 *
 * Example: "graph.corrupt-token:pass=dead_store,func=main,round=1"
 */
#ifndef CASH_SUPPORT_FAULT_INJECTION_H
#define CASH_SUPPORT_FAULT_INJECTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/diagnostics.h"

namespace cash {

class Graph;

/** Exception thrown at a `pass.throw` injection point. */
class InjectedFault : public FatalError
{
  public:
    explicit InjectedFault(const std::string& msg) : FatalError(msg) {}
};

/** One parsed injection point. */
struct FaultSpec
{
    std::string point;  ///< "pass.throw", "graph.corrupt-token", ...
    std::string pass;   ///< Pass name to match ("" = any).
    std::string func;   ///< Function name to match ("" = any).
    int round = 0;      ///< Fixed-point round to match (0 = any).
    uint64_t seed = 0;  ///< Site selector for graph corruption.
    uint64_t seq = 0;   ///< Event sequence number for sim.drop-event.

    std::string str() const;
};

/**
 * An immutable set of injection points.  Thread-safe to share between
 * compilation workers once constructed.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Parse a spec string.  Raises FatalError (code semantics:
     * ErrorCode::BadFaultSpec) on unknown points/keys or malformed
     * input — a typo must never silently disable the fault.
     */
    static FaultPlan parse(const std::string& text);

    /**
     * The process-wide plan from $CASH_INJECT (empty plan when the
     * variable is unset).  Parsed once on first use.
     */
    static const FaultPlan& fromEnv();

    bool empty() const { return specs_.empty(); }
    const std::vector<FaultSpec>& specs() const { return specs_; }

    /**
     * First spec registered for @p point matching (@p func, @p pass,
     * @p round); nullptr when none matches.
     */
    const FaultSpec* match(const char* point, const std::string& func,
                           const std::string& pass, int round) const;

    /** True when the delivery with sequence number @p seq is dropped. */
    bool
    dropEvent(uint64_t seq) const
    {
        return hasDropEvent_ && dropMatches(seq);
    }

    std::string str() const;

  private:
    bool dropMatches(uint64_t seq) const;

    std::vector<FaultSpec> specs_;
    bool hasDropEvent_ = false;  ///< Fast path for the sim hot loop.
};

/**
 * Deterministically corrupt one token edge of @p g: the @p seed picks
 * a side-effect node with a token input and its token input is
 * detached, leaving a verifier-detectable arity violation.  Returns a
 * description of the corruption, or "" when the graph has no
 * candidate site (nothing was changed).
 */
std::string corruptTokenEdge(Graph& g, uint64_t seed);

} // namespace cash

#endif // CASH_SUPPORT_FAULT_INJECTION_H
