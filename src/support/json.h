/**
 * @file
 * A small JSON document model and recursive-descent parser.
 *
 * The service layer (docs/SERVICE.md) speaks length-prefixed JSON
 * frames, so unlike the write-only emitters in trace.h
 * (`jsonEscape`, `statSetJson`), this module must also *read* JSON —
 * including hostile input from arbitrary clients.  Parsing therefore
 * returns a cash::Status instead of throwing, enforces a nesting
 * depth limit, and never recurses deeper than that limit.
 *
 * Design notes:
 *   * Object members keep their *textual order* (a vector of pairs,
 *     not a map), so dump(parse(x)) preserves member order and
 *     serialized documents are deterministic.
 *   * Numbers are kept as int64 when the literal is integral and in
 *     range, double otherwise; dump() round-trips both.
 *   * This is a protocol tool, not a general library: no comments, no
 *     trailing commas, UTF-8 passthrough (\uXXXX escapes are decoded
 *     to UTF-8; surrogate pairs supported).
 */
#ifndef CASH_SUPPORT_JSON_H
#define CASH_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/diagnostics.h"

namespace cash {

/** One JSON value: null, bool, number, string, array or object. */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, Json>;

    Json() = default;
    static Json null() { return Json(); }
    static Json boolean(bool v);
    static Json number(int64_t v);
    static Json number(double v);
    static Json string(std::string v);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Value accessors; mismatched kinds return the fallback. */
    bool asBool(bool fallback = false) const;
    int64_t asInt(int64_t fallback = 0) const;
    double asDouble(double fallback = 0) const;
    const std::string& asString() const { return str_; }

    /** Array elements (empty unless isArray()). */
    const std::vector<Json>& items() const { return items_; }
    /** Object members in textual order (empty unless isObject()). */
    const std::vector<Member>& members() const { return members_; }

    /** First member named @p key, or nullptr (objects only). */
    const Json* get(const std::string& key) const;

    /** Convenience typed lookups with fallbacks (objects only). */
    std::string getString(const std::string& key,
                          const std::string& fallback = "") const;
    int64_t getInt(const std::string& key, int64_t fallback = 0) const;
    bool getBool(const std::string& key, bool fallback = false) const;

    /** Append to an array value. */
    void push(Json v);
    /** Append a member to an object value (no duplicate check). */
    void set(const std::string& key, Json v);

    /** Compact deterministic serialization (member order preserved). */
    std::string dump() const;

    /**
     * Parse @p text into @p out.  On failure returns an
     * ErrorCode::ParseError Status whose message includes the byte
     * offset; @p out is left null.  @p maxDepth bounds array/object
     * nesting so adversarial frames cannot exhaust the stack.
     */
    static Status parse(const std::string& text, Json* out,
                        int maxDepth = 64);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    double dbl_ = 0;
    std::string str_;
    std::vector<Json> items_;
    std::vector<Member> members_;
};

} // namespace cash

#endif // CASH_SUPPORT_JSON_H
