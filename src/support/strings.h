/**
 * @file
 * Small string helpers used throughout the library.
 */
#ifndef CASH_SUPPORT_STRINGS_H
#define CASH_SUPPORT_STRINGS_H

#include <cstdint>
#include <string>
#include <vector>

namespace cash {

/** Join the elements of @p parts with @p sep. */
std::string join(const std::vector<std::string>& parts,
                 const std::string& sep);

/** Split @p s on the single character @p sep (no empty-trailing entry). */
std::vector<std::string> split(const std::string& s, char sep);

/** Strip leading and trailing ASCII whitespace. */
std::string trim(const std::string& s);

/** True when @p s begins with @p prefix. */
bool startsWith(const std::string& s, const std::string& prefix);

/** Format a double with @p digits digits after the decimal point. */
std::string fmtDouble(double v, int digits = 2);

/** Left-pad @p s to width @p w. */
std::string padLeft(const std::string& s, size_t w);

/** Right-pad @p s to width @p w. */
std::string padRight(const std::string& s, size_t w);

} // namespace cash

#endif // CASH_SUPPORT_STRINGS_H
