#include "support/fault_injection.h"

#include <cstdlib>
#include <mutex>

#include "pegasus/graph.h"
#include "support/strings.h"

namespace cash {

namespace {

const char* const kPoints[] = {"pass.throw", "graph.corrupt-token",
                               "sim.drop-event"};

bool
knownPoint(const std::string& p)
{
    for (const char* k : kPoints)
        if (p == k)
            return true;
    return false;
}

uint64_t
parseU64(const std::string& text, const std::string& what)
{
    uint64_t v = 0;
    if (text.empty())
        fatal("bad fault spec: empty value for '" + what + "'");
    for (char c : text) {
        if (c < '0' || c > '9')
            fatal("bad fault spec: non-numeric value '" + text +
                  "' for '" + what + "'");
        uint64_t digit = static_cast<uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            fatal("bad fault spec: value '" + text + "' for '" + what +
                  "' out of range");
        v = v * 10 + digit;
    }
    return v;
}

} // namespace

std::string
FaultSpec::str() const
{
    std::string s = point;
    char sep = ':';
    auto kv = [&](const std::string& k, const std::string& v) {
        if (v.empty())
            return;
        s += sep;
        s += k + "=" + v;
        sep = ',';
    };
    kv("pass", pass);
    kv("func", func);
    if (round)
        kv("round", std::to_string(round));
    if (seed)
        kv("seed", std::to_string(seed));
    if (point == "sim.drop-event")
        kv("seq", std::to_string(seq));
    return s;
}

FaultPlan
FaultPlan::parse(const std::string& text)
{
    FaultPlan plan;
    for (const std::string& part : split(text, ';')) {
        std::string fault = trim(part);
        if (fault.empty())
            continue;
        FaultSpec spec;
        size_t colon = fault.find(':');
        spec.point = trim(fault.substr(0, colon));
        if (!knownPoint(spec.point))
            fatal("bad fault spec: unknown injection point '" +
                  spec.point + "' (known: pass.throw, "
                  "graph.corrupt-token, sim.drop-event)");
        if (colon != std::string::npos) {
            for (const std::string& kvPart :
                 split(fault.substr(colon + 1), ',')) {
                std::string kv = trim(kvPart);
                if (kv.empty())
                    continue;
                size_t eq = kv.find('=');
                if (eq == std::string::npos)
                    fatal("bad fault spec: expected key=value, got '" +
                          kv + "'");
                std::string key = trim(kv.substr(0, eq));
                std::string value = trim(kv.substr(eq + 1));
                if (key == "pass")
                    spec.pass = value;
                else if (key == "func")
                    spec.func = value;
                else if (key == "round")
                    spec.round =
                        static_cast<int>(parseU64(value, key));
                else if (key == "seed")
                    spec.seed = parseU64(value, key);
                else if (key == "seq")
                    spec.seq = parseU64(value, key);
                else
                    fatal("bad fault spec: unknown key '" + key +
                          "' (known: pass, func, round, seed, seq)");
            }
        }
        if (spec.point == "sim.drop-event")
            plan.hasDropEvent_ = true;
        plan.specs_.push_back(std::move(spec));
    }
    return plan;
}

const FaultPlan&
FaultPlan::fromEnv()
{
    static FaultPlan* plan = nullptr;
    static std::once_flag once;
    std::call_once(once, [] {
        const char* env = std::getenv("CASH_INJECT");
        plan = new FaultPlan(env ? parse(env) : FaultPlan());
    });
    return *plan;
}

const FaultSpec*
FaultPlan::match(const char* point, const std::string& func,
                 const std::string& pass, int round) const
{
    for (const FaultSpec& s : specs_) {
        if (s.point != point)
            continue;
        if (!s.pass.empty() && s.pass != pass)
            continue;
        if (!s.func.empty() && s.func != func)
            continue;
        if (s.round != 0 && s.round != round)
            continue;
        return &s;
    }
    return nullptr;
}

bool
FaultPlan::dropMatches(uint64_t seq) const
{
    for (const FaultSpec& s : specs_)
        if (s.point == "sim.drop-event" && s.seq == seq)
            return true;
    return false;
}

std::string
FaultPlan::str() const
{
    std::vector<std::string> parts;
    for (const FaultSpec& s : specs_)
        parts.push_back(s.str());
    return join(parts, "; ");
}

std::string
corruptTokenEdge(Graph& g, uint64_t seed)
{
    // Candidate sites in node-id order: side-effect operations whose
    // fixed arity includes a token input.  Detaching that input is an
    // arity violation every verifyGraph() run reports.
    std::vector<Node*> sites;
    g.forEach([&](Node* n) {
        int ti = n->tokenInIndex();
        if (ti >= 0 && ti < n->numInputs() && n->isSideEffect())
            sites.push_back(n);
    });
    if (sites.empty())
        return "";
    Node* victim = sites[seed % sites.size()];
    g.removeInput(victim, victim->tokenInIndex());
    return "detached token input of " + victim->str() + " in '" +
           g.name + "'";
}

} // namespace cash
