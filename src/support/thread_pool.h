/**
 * @file
 * A small work-stealing thread pool for per-function compilation.
 *
 * The pool owns `workers() - 1` background threads; the thread that
 * calls parallelFor() participates as worker 0, so a pool of size 1
 * spawns no threads and runs every task inline — byte-identical to a
 * plain loop.  parallelFor() deals task indices round-robin into
 * per-worker deques; a worker drains its own deque from the front and
 * steals from the back of its siblings when it runs dry.
 *
 * Determinism contract: the pool guarantees nothing about *execution*
 * order, only that every task runs exactly once and parallelFor()
 * returns after all have finished.  Callers that need deterministic
 * output must give each task its own output slot (indexed by task id)
 * and merge the slots in task order afterwards — see
 * `compileSource()` for the canonical use.
 *
 * Exceptions thrown by tasks are caught per task; after the batch
 * completes, the exception of the *lowest-numbered* failing task is
 * rethrown on the calling thread (so failure behavior is independent
 * of scheduling).
 *
 * One batch at a time: parallelFor() is not reentrant and must always
 * be called from the same (owner) thread.
 */
#ifndef CASH_SUPPORT_THREAD_POOL_H
#define CASH_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cash {

class ThreadPool
{
  public:
    /** Task body: receives the task index and the worker id running it
     *  (0 .. workers()-1); worker id 0 is the calling thread. */
    using Task = std::function<void(size_t task, int worker)>;

    /** @p threads total workers; 0 means one per hardware thread. */
    explicit ThreadPool(int threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Total worker count, including the calling thread. */
    int workers() const { return static_cast<int>(queues_.size()); }

    /**
     * Run fn(i, worker) for every i in [0, n), blocking until all
     * tasks have finished.  Rethrows the lowest-index task exception.
     */
    void parallelFor(size_t n, const Task& fn);

    /** std::thread::hardware_concurrency(), never less than 1. */
    static int hardwareConcurrency();

  private:
    /** One worker's task deque (own pop at front, steals at back). */
    struct WorkQueue
    {
        std::mutex mu;
        std::deque<size_t> tasks;
    };

    bool popTask(int self, size_t* out);
    void runTasks(int self);
    void workerLoop(int self);

    std::vector<std::unique_ptr<WorkQueue>> queues_;
    std::vector<std::thread> threads_;

    // Batch handoff: the owner publishes fn_/generation_ under mu_ and
    // wakes the workers; remaining_ counts unfinished tasks.
    std::mutex mu_;
    std::condition_variable wake_;
    std::condition_variable done_;
    const Task* fn_ = nullptr;
    uint64_t generation_ = 0;
    bool stop_ = false;
    size_t remaining_ = 0;

    // First (lowest task index) exception of the current batch.
    std::mutex errMu_;
    size_t errTask_ = 0;
    std::exception_ptr error_;
};

} // namespace cash

#endif // CASH_SUPPORT_THREAD_POOL_H
