/**
 * @file
 * Structured observability: trace events, scoped timers and JSON
 * export.
 *
 * The compiler's pass manager and the dataflow simulator record their
 * activity into a TraceRecorder:
 *
 *   * **Complete events** ('X') — named spans with a start timestamp
 *     and a duration, e.g. one span per optimization-pass run or per
 *     simulated activation.  Spans on the same track nest by
 *     containment, so `chrome://tracing` / Perfetto render the usual
 *     flame graph.
 *   * **Counter events** ('C') — named sampled values over time, e.g.
 *     LSQ occupancy per memory access.
 *   * **Instant events** ('i') — point markers.
 *
 * Two time domains coexist in one file, separated by Chrome-trace
 * *process* ids: pid 0 carries wall-clock compiler spans (microseconds
 * since recorder creation) and pid 1 carries simulated time (cycles).
 *
 * `writeChromeTrace()` emits the Chrome trace-event JSON object format
 * (`{"traceEvents": [...]}`), loadable in Perfetto.  The small JSON
 * helpers at the bottom (`jsonEscape`, `statSetJson`, `histBucket`)
 * are shared by the `--stats-json` driver export and `bench_util.h`.
 *
 * See docs/OBSERVABILITY.md for the counter namespace and schemas.
 */
#ifndef CASH_SUPPORT_TRACE_H
#define CASH_SUPPORT_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "support/stats.h"

namespace cash {

/** Chrome-trace process ids: the two time domains (see file header). */
enum : int
{
    kTraceWallPid = 0,   ///< Wall-clock microseconds.
    kTraceCyclePid = 1,  ///< Simulated cycles.
};

/** One key→value argument attached to a trace event. */
struct TraceArg
{
    std::string key;
    bool isString = false;
    int64_t i = 0;
    std::string s;

    TraceArg(std::string k, int64_t v)
        : key(std::move(k)), i(v) {}
    TraceArg(std::string k, std::string v)
        : key(std::move(k)), isString(true), s(std::move(v)) {}
};

/** One trace-event record (a subset of the Chrome trace format). */
struct TraceEvent
{
    std::string name;
    std::string cat;
    char phase = 'X';   ///< 'X' complete, 'C' counter, 'i' instant.
    int pid = kTraceWallPid;
    int tid = 0;        ///< Track within the pid (0 = main thread).
    uint64_t ts = 0;    ///< Microseconds (pid 0) or cycles (pid 1).
    uint64_t dur = 0;   ///< Complete events only.
    std::vector<TraceArg> args;
};

/**
 * Collects trace events.  Disabled recorders drop everything at the
 * call site, so instrumented code can record unconditionally.
 */
class TraceRecorder
{
  public:
    TraceRecorder();

    void enable(bool on = true) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /** Microseconds of wall clock since construction (or clear()). */
    uint64_t nowUs() const;

    /** Record a completed span of wall time. */
    void completeEvent(const std::string& name, const std::string& cat,
                       uint64_t startUs, uint64_t durUs,
                       std::vector<TraceArg> args = {},
                       int pid = kTraceWallPid);

    /** Record a counter sample (value @p v at time @p ts). */
    void counterEvent(const std::string& name, uint64_t ts, int64_t v,
                      int pid = kTraceCyclePid);

    /** Record a point marker. */
    void instantEvent(const std::string& name, const std::string& cat,
                      uint64_t ts, int pid = kTraceWallPid);

    const std::vector<TraceEvent>& events() const { return events_; }

    /** Events of category @p cat (e.g. all per-pass spans). */
    std::vector<const TraceEvent*> byCategory(
        const std::string& cat) const;

    /** Drop all recorded events and restart the clock. */
    void clear();

    // -----------------------------------------------------------------
    // Per-worker buffering (parallel compilation)
    // -----------------------------------------------------------------
    //
    // Each compilation worker records into a private TraceRecorder and
    // the owner splices the buffers into the main recorder afterwards,
    // in function-declaration order, so the event *sequence* is
    // deterministic at any thread count (timestamps remain wall
    // clock).  Usage: child.syncClockTo(parent); child.setTrackId(i);
    // ... record ...; parent.append(child).

    /**
     * Adopt @p parent's clock origin so this recorder's nowUs() values
     * land in the same timeline as the parent's.  Call before
     * recording anything.
     */
    void syncClockTo(const TraceRecorder& parent);

    /**
     * Chrome-trace track ("tid") stamped on every subsequently
     * recorded event.  Give each function's spans a distinct track so
     * overlapping parallel work does not fake nesting in the viewer.
     */
    void setTrackId(int tid) { trackId_ = tid; }

    /**
     * Append all of @p other's events (recorded against the same clock
     * origin, see syncClockTo()) to this recorder; honors this
     * recorder's event cap and accumulates @p other's drop count.
     */
    void append(const TraceRecorder& other);

    /**
     * Cap on stored events; beyond it new events are dropped (and
     * counted), so long simulations cannot exhaust memory.
     */
    void setMaxEvents(size_t n) { maxEvents_ = n; }
    uint64_t dropped() const { return dropped_; }

    /** Serialize as `{"traceEvents": [...]}` (Perfetto-loadable). */
    void writeChromeTrace(std::ostream& os) const;
    std::string chromeTraceJson() const;

  private:
    bool push(TraceEvent ev);

    bool enabled_ = false;
    int trackId_ = 0;
    uint64_t originNs_ = 0;
    std::vector<TraceEvent> events_;
    size_t maxEvents_ = 1 << 20;
    uint64_t dropped_ = 0;
};

/**
 * RAII span: records one complete event on destruction.  Does nothing
 * when @p rec is null or disabled.  Accumulate event arguments with
 * arg() while the span is open.
 */
class ScopedTimer
{
  public:
    ScopedTimer(TraceRecorder* rec, std::string name, std::string cat);
    ~ScopedTimer();
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

    void arg(const std::string& key, int64_t v);
    void arg(const std::string& key, const std::string& v);

    /** Wall time since construction, in microseconds. */
    uint64_t elapsedUs() const;

  private:
    TraceRecorder* rec_;
    std::string name_;
    std::string cat_;
    uint64_t startUs_ = 0;
    std::vector<TraceArg> args_;
};

/**
 * The process-wide recorder.  Library code records here by default;
 * it is disabled unless a driver (cashc --trace, a bench binary, a
 * test) enables it.
 */
TraceRecorder& globalTracer();

// ---------------------------------------------------------------------
// JSON helpers (shared by --trace, --stats-json and bench_util.h)
// ---------------------------------------------------------------------

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string& s);

/** Render a StatSet as a sorted JSON object `{"name": value, ...}`. */
std::string statSetJson(const StatSet& stats, int indent = 0);

/**
 * Power-of-two histogram bucket label for value @p v:
 * "0", "1", "2", "le4", "le8", ..., "le1024", "gt1024".
 * Used for the `sim.mem.*Hist.*` counter families.
 */
std::string histBucket(uint64_t v);

/** Number of histBucket() buckets ("0" .. "gt1024"). */
constexpr int kHistBuckets = 13;

/**
 * Dense index of the bucket holding @p v, for fixed-size histogram
 * arrays on hot paths (no string is built until report time):
 * histBucket(v) == histBucketLabel(histBucketIndex(v)).
 */
int histBucketIndex(uint64_t v);

/** Label of bucket @p i (0 <= i < kHistBuckets). */
const char* histBucketLabel(int i);

} // namespace cash

#endif // CASH_SUPPORT_TRACE_H
