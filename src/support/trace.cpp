#include "support/trace.h"

#include <chrono>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace cash {

namespace {

uint64_t
wallNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void
writeArgs(std::ostream& os, const std::vector<TraceArg>& args)
{
    os << "{";
    bool first = true;
    for (const TraceArg& a : args) {
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(a.key) << "\":";
        if (a.isString)
            os << "\"" << jsonEscape(a.s) << "\"";
        else
            os << a.i;
    }
    os << "}";
}

} // namespace

TraceRecorder::TraceRecorder() : originNs_(wallNs()) {}

uint64_t
TraceRecorder::nowUs() const
{
    return (wallNs() - originNs_) / 1000;
}

bool
TraceRecorder::push(TraceEvent ev)
{
    if (!enabled_)
        return false;
    if (events_.size() >= maxEvents_) {
        dropped_++;
        return false;
    }
    ev.tid = trackId_;
    events_.push_back(std::move(ev));
    return true;
}

void
TraceRecorder::syncClockTo(const TraceRecorder& parent)
{
    originNs_ = parent.originNs_;
}

void
TraceRecorder::append(const TraceRecorder& other)
{
    if (!enabled_)
        return;
    for (const TraceEvent& ev : other.events_) {
        if (events_.size() >= maxEvents_) {
            dropped_++;
            continue;
        }
        events_.push_back(ev);
    }
    dropped_ += other.dropped_;
}

void
TraceRecorder::completeEvent(const std::string& name,
                             const std::string& cat, uint64_t startUs,
                             uint64_t durUs, std::vector<TraceArg> args,
                             int pid)
{
    TraceEvent ev;
    ev.name = name;
    ev.cat = cat;
    ev.phase = 'X';
    ev.pid = pid;
    ev.ts = startUs;
    ev.dur = durUs;
    ev.args = std::move(args);
    push(std::move(ev));
}

void
TraceRecorder::counterEvent(const std::string& name, uint64_t ts,
                            int64_t v, int pid)
{
    TraceEvent ev;
    ev.name = name;
    ev.cat = "counter";
    ev.phase = 'C';
    ev.pid = pid;
    ev.ts = ts;
    ev.args.emplace_back("value", v);
    push(std::move(ev));
}

void
TraceRecorder::instantEvent(const std::string& name,
                            const std::string& cat, uint64_t ts, int pid)
{
    TraceEvent ev;
    ev.name = name;
    ev.cat = cat;
    ev.phase = 'i';
    ev.pid = pid;
    ev.ts = ts;
    push(std::move(ev));
}

std::vector<const TraceEvent*>
TraceRecorder::byCategory(const std::string& cat) const
{
    std::vector<const TraceEvent*> out;
    for (const TraceEvent& ev : events_)
        if (ev.cat == cat)
            out.push_back(&ev);
    return out;
}

void
TraceRecorder::clear()
{
    events_.clear();
    dropped_ = 0;
    originNs_ = wallNs();
}

void
TraceRecorder::writeChromeTrace(std::ostream& os) const
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (const TraceEvent& ev : events_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"" << jsonEscape(ev.name) << "\","
           << "\"cat\":\"" << jsonEscape(ev.cat) << "\","
           << "\"ph\":\"" << ev.phase << "\","
           << "\"pid\":" << ev.pid << ",\"tid\":" << ev.tid << ","
           << "\"ts\":" << ev.ts;
        if (ev.phase == 'X')
            os << ",\"dur\":" << ev.dur;
        if (ev.phase == 'i')
            os << ",\"s\":\"t\"";
        if (!ev.args.empty()) {
            os << ",\"args\":";
            writeArgs(os, ev.args);
        }
        os << "}";
    }
    // Name the two time-domain "processes" for the trace viewer.
    for (int pid : {kTraceWallPid, kTraceCyclePid}) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
           << ",\"tid\":0,\"args\":{\"name\":\""
           << (pid == kTraceWallPid ? "compile (wall us)"
                                    : "simulation (cycles)")
           << "\"}}";
    }
    os << "\n]}\n";
}

std::string
TraceRecorder::chromeTraceJson() const
{
    std::ostringstream os;
    writeChromeTrace(os);
    return os.str();
}

ScopedTimer::ScopedTimer(TraceRecorder* rec, std::string name,
                         std::string cat)
    : rec_(rec && rec->enabled() ? rec : nullptr),
      name_(std::move(name)), cat_(std::move(cat))
{
    if (rec_)
        startUs_ = rec_->nowUs();
}

ScopedTimer::~ScopedTimer()
{
    if (rec_)
        rec_->completeEvent(name_, cat_, startUs_, elapsedUs(),
                            std::move(args_));
}

void
ScopedTimer::arg(const std::string& key, int64_t v)
{
    if (rec_)
        args_.emplace_back(key, v);
}

void
ScopedTimer::arg(const std::string& key, const std::string& v)
{
    if (rec_)
        args_.emplace_back(key, v);
}

uint64_t
ScopedTimer::elapsedUs() const
{
    return rec_ ? rec_->nowUs() - startUs_ : 0;
}

TraceRecorder&
globalTracer()
{
    static TraceRecorder recorder;
    return recorder;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
statSetJson(const StatSet& stats, int indent)
{
    std::string pad(indent, ' ');
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (const auto& [k, v] : stats.all()) {
        if (!first)
            os << ",";
        first = false;
        os << "\n" << pad << "  \"" << jsonEscape(k) << "\": " << v;
    }
    if (!first)
        os << "\n" << pad;
    os << "}";
    return os.str();
}

int
histBucketIndex(uint64_t v)
{
    if (v <= 2)
        return static_cast<int>(v);
    int i = 3;
    for (uint64_t b = 4; b <= 1024; b *= 2, i++)
        if (v <= b)
            return i;
    return kHistBuckets - 1;
}

const char*
histBucketLabel(int i)
{
    static const char* const kLabels[kHistBuckets] = {
        "0",     "1",     "2",     "le4",    "le8",     "le16", "le32",
        "le64",  "le128", "le256", "le512",  "le1024",  "gt1024"};
    return kLabels[i];
}

std::string
histBucket(uint64_t v)
{
    return histBucketLabel(histBucketIndex(v));
}

} // namespace cash
