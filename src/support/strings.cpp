#include "support/strings.h"

#include <cctype>
#include <cstdio>

namespace cash {

std::string
join(const std::vector<std::string>& parts, const std::string& sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); i++) {
        if (i)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); i++) {
        if (i == s.size() || s[i] == sep) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    if (!out.empty() && out.back().empty())
        out.pop_back();
    return out;
}

std::string
trim(const std::string& s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        b++;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        e--;
    return s.substr(b, e - b);
}

bool
startsWith(const std::string& s, const std::string& prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
padLeft(const std::string& s, size_t w)
{
    if (s.size() >= w)
        return s;
    return std::string(w - s.size(), ' ') + s;
}

std::string
padRight(const std::string& s, size_t w)
{
    if (s.size() >= w)
        return s;
    return s + std::string(w - s.size(), ' ');
}

} // namespace cash
