/**
 * @file
 * Error reporting and logging facilities for the CASH library.
 *
 * Follows the gem5 discipline: fatal() is for user errors (bad input
 * program, bad configuration) and raises a recoverable exception;
 * panic() is for internal invariant violations and aborts.
 *
 * For failures that are expected operational outcomes rather than
 * exceptional control flow — a quarantined optimization pass, a
 * deadlocked simulation — the library returns a cash::Status (or an
 * outcome enum embedding one) instead of throwing.  See
 * docs/ROBUSTNESS.md for the full error model.
 */
#ifndef CASH_SUPPORT_DIAGNOSTICS_H
#define CASH_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cash {

/**
 * Machine-readable failure categories, shared by compiler and
 * simulator diagnostics (`Status`, `PassFailure`, `SimOutcome`).
 */
enum class ErrorCode
{
    Ok = 0,
    ParseError,     ///< Lexer/parser rejected the input.
    SemaError,      ///< Type checking / semantic analysis failed.
    VerifyError,    ///< Graph verifier found violated invariants.
    PassError,      ///< An optimization pass threw.
    Deadlock,       ///< Dataflow simulation cannot make progress.
    EventLimit,     ///< Simulation exceeded its event budget (livelock?).
    StackOverflow,  ///< Simulated call stack exhausted.
    MissingGraph,   ///< Simulated call to a function with no graph.
    BadFaultSpec,   ///< Malformed --inject / CASH_INJECT spec.
    AnalysisError,  ///< A lint rule reported an error-severity finding.
    InternalError,  ///< Anything else (catch-all).
};

/** Stable lower-snake name of @p code (e.g. "verify_error"). */
const char* errorCodeName(ErrorCode code);

/**
 * A recoverable operation outcome: Ok, or an ErrorCode plus a
 * human-readable message.  Cheap to copy when Ok.
 */
class [[nodiscard]] Status
{
  public:
    Status() = default;  // Ok

    static Status ok() { return Status(); }

    static Status
    error(ErrorCode code, std::string message)
    {
        Status s;
        s.code_ = code;
        s.message_ = std::move(message);
        return s;
    }

    bool isOk() const { return code_ == ErrorCode::Ok; }
    explicit operator bool() const { return isOk(); }

    ErrorCode code() const { return code_; }
    const std::string& message() const { return message_; }

    /** "ok" or "<code name>: <message>". */
    std::string str() const;

  private:
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

/** A position in a Mini-C source buffer (1-based line/column). */
struct SourceLoc
{
    int line = 0;
    int column = 0;

    bool valid() const { return line > 0; }
    std::string str() const;
};

/**
 * Exception raised for errors in the *user's* input: syntax errors,
 * type errors, unsupported constructs, bad simulator configuration.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Raise a FatalError with printf-free streaming formatting. */
[[noreturn]] void fatal(const std::string& msg);
[[noreturn]] void fatalAt(SourceLoc loc, const std::string& msg);

/** Abort on internal invariant violation (a CASH bug, not a user error). */
[[noreturn]] void panic(const std::string& msg);

/** Non-fatal warning, written to stderr. */
void warn(const std::string& msg);

/** Global verbosity for debug tracing (0 = quiet). */
extern int traceLevel;

/** Emit a trace message at the given level when tracing is enabled. */
void trace(int level, const std::string& msg);

/** Internal assertion that panics with a message on failure. */
#define CASH_ASSERT(cond, msg)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::cash::panic(std::string("assertion failed: ") + #cond +   \
                          " — " + (msg));                               \
        }                                                               \
    } while (0)

} // namespace cash

#endif // CASH_SUPPORT_DIAGNOSTICS_H
