/**
 * @file
 * Error reporting and logging facilities for the CASH library.
 *
 * Follows the gem5 discipline: fatal() is for user errors (bad input
 * program, bad configuration) and raises a recoverable exception;
 * panic() is for internal invariant violations and aborts.
 */
#ifndef CASH_SUPPORT_DIAGNOSTICS_H
#define CASH_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cash {

/** A position in a Mini-C source buffer (1-based line/column). */
struct SourceLoc
{
    int line = 0;
    int column = 0;

    bool valid() const { return line > 0; }
    std::string str() const;
};

/**
 * Exception raised for errors in the *user's* input: syntax errors,
 * type errors, unsupported constructs, bad simulator configuration.
 */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg) : std::runtime_error(msg) {}
};

/** Raise a FatalError with printf-free streaming formatting. */
[[noreturn]] void fatal(const std::string& msg);
[[noreturn]] void fatalAt(SourceLoc loc, const std::string& msg);

/** Abort on internal invariant violation (a CASH bug, not a user error). */
[[noreturn]] void panic(const std::string& msg);

/** Non-fatal warning, written to stderr. */
void warn(const std::string& msg);

/** Global verbosity for debug tracing (0 = quiet). */
extern int traceLevel;

/** Emit a trace message at the given level when tracing is enabled. */
void trace(int level, const std::string& msg);

/** Internal assertion that panics with a message on failure. */
#define CASH_ASSERT(cond, msg)                                          \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::cash::panic(std::string("assertion failed: ") + #cond +   \
                          " — " + (msg));                               \
        }                                                               \
    } while (0)

} // namespace cash

#endif // CASH_SUPPORT_DIAGNOSTICS_H
