#include "support/thread_pool.h"

namespace cash {

int
ThreadPool::hardwareConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        threads = hardwareConcurrency();
    queues_.reserve(threads);
    for (int i = 0; i < threads; i++)
        queues_.push_back(std::make_unique<WorkQueue>());
    threads_.reserve(threads - 1);
    for (int i = 1; i < threads; i++)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& t : threads_)
        t.join();
}

bool
ThreadPool::popTask(int self, size_t* out)
{
    // Own queue first (front), then sweep siblings, stealing from the
    // back so the victim keeps the cache-warm front of its run.
    {
        WorkQueue& q = *queues_[self];
        std::lock_guard<std::mutex> lock(q.mu);
        if (!q.tasks.empty()) {
            *out = q.tasks.front();
            q.tasks.pop_front();
            return true;
        }
    }
    int n = workers();
    for (int i = 1; i < n; i++) {
        WorkQueue& q = *queues_[(self + i) % n];
        std::lock_guard<std::mutex> lock(q.mu);
        if (!q.tasks.empty()) {
            *out = q.tasks.back();
            q.tasks.pop_back();
            return true;
        }
    }
    return false;
}

void
ThreadPool::runTasks(int self)
{
    size_t task;
    while (popTask(self, &task)) {
        // Re-read fn_ per task: a straggler from the previous batch
        // may legitimately pop (and must correctly run) tasks of the
        // batch the owner published after it started sweeping.
        const Task* fn;
        {
            std::lock_guard<std::mutex> lock(mu_);
            fn = fn_;
        }
        try {
            (*fn)(task, self);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errMu_);
            if (!error_ || task < errTask_) {
                error_ = std::current_exception();
                errTask_ = task;
            }
        }
        std::lock_guard<std::mutex> lock(mu_);
        if (--remaining_ == 0)
            done_.notify_all();
    }
}

void
ThreadPool::workerLoop(int self)
{
    uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mu_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
        }
        runTasks(self);
    }
}

void
ThreadPool::parallelFor(size_t n, const Task& fn)
{
    if (n == 0)
        return;
    if (workers() == 1) {
        // Serial pool: run inline, bypassing the machinery entirely so
        // -j1 compiles behave exactly like a plain loop.
        for (size_t i = 0; i < n; i++)
            fn(i, 0);
        return;
    }

    {
        std::lock_guard<std::mutex> lock(errMu_);
        error_ = nullptr;
    }
    // Publish the batch before any task becomes poppable, so even a
    // straggling worker that steals a task immediately sees a
    // consistent fn_/remaining_.
    {
        std::lock_guard<std::mutex> lock(mu_);
        fn_ = &fn;
        remaining_ = n;
    }
    for (size_t i = 0; i < n; i++) {
        WorkQueue& q = *queues_[i % queues_.size()];
        std::lock_guard<std::mutex> lock(q.mu);
        q.tasks.push_back(i);
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        generation_++;
    }
    wake_.notify_all();

    runTasks(0);
    {
        std::unique_lock<std::mutex> lock(mu_);
        done_.wait(lock, [&] { return remaining_ == 0; });
    }
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lock(errMu_);
        err = error_;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace cash
