/**
 * @file
 * `cashd` server core: a persistent compile service over a
 * Unix-domain socket (docs/SERVICE.md).
 *
 * Thread architecture:
 *
 *   accept thread ──► one reader thread per connection
 *                        │  control ops (ping/metrics/shutdown)
 *                        │  answered inline; compile-family ops
 *                        ▼  enqueued
 *                     pending queue  ──►  dispatch thread
 *                                           │ drains the queue into
 *                                           ▼ batches
 *                                        ThreadPool.parallelFor
 *                                           │ per request: result
 *                                           ▼ cache, else driver
 *                                        response frames
 *
 * Batching is the scaling mechanism: concurrent clients funnel into
 * one work-stealing pool (PR 3), each request compiled serially
 * (jobs=1) so parallelism comes from request-level fan-out, and
 * repeat traffic short-circuits through the content-addressed
 * ResultCache.  The queue has a depth cap; beyond it requests are
 * rejected with an `overloaded` error instead of building unbounded
 * backlog.
 *
 * Shutdown is graceful by construction: stop() closes the listener,
 * half-closes every connection for reading (no new requests), lets
 * the dispatcher drain every in-flight request and write its
 * response, and only then closes the sockets.
 *
 * Observability: svc.* counters (queue depth, batch sizes, cache hit
 * rate, p50/p95/p99 request latency) through the PR 1 StatSet
 * convention via metrics(), and one "svc" trace span per request when
 * a TraceRecorder is attached (guarded internally — the recorder
 * itself is not thread-safe).
 */
#ifndef CASH_SERVICE_SERVER_H
#define CASH_SERVICE_SERVER_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/cache.h"
#include "service/protocol.h"
#include "support/stats.h"
#include "support/trace.h"

namespace cash {

/** Error code of responses rejected by the queue-depth cap. */
inline constexpr const char* kSvcErrOverloaded = "overloaded";

struct ServiceConfig
{
    /** Filesystem path of the Unix-domain socket (required). */
    std::string socketPath;
    /** Pool workers for request batching; 0 = one per hw thread. */
    int jobs = 0;
    /** Result-cache bounds (see ResultCache). */
    size_t cacheEntries = 4096;
    size_t cacheBytes = 256u << 20;
    /** Per-frame payload cap. */
    uint32_t maxFrameBytes = kSvcMaxFrameBytes;
    /** Pending-request cap; beyond it requests get `overloaded`. */
    size_t maxQueueDepth = 4096;
    /**
     * Ceiling on any request's simulator event budget.  A request
     * asking for more (or for "unlimited" via 0) is clamped down, so
     * one adversarial or buggy client cannot pin a pool worker on a
     * livelocked graph.  0 disables the cap.  The clamp is visible
     * to the client as an ordinary `event_limit` sim outcome.
     */
    uint64_t maxEventsCap = 50000000;
    /**
     * Per-request simulation wall-clock guard in milliseconds; runs
     * that exceed it come back with sim outcome `timeout`.  Timeout
     * results are never cached (they are host-load-dependent, not a
     * property of the request).  0 disables the guard.
     */
    int64_t simWallMs = 10000;
    /** listen(2) backlog. */
    int backlog = 128;
    /** Optional trace sink (guarded internally); may be null. */
    TraceRecorder* tracer = nullptr;
};

class ServiceServer
{
  public:
    explicit ServiceServer(ServiceConfig cfg);
    ~ServiceServer();

    ServiceServer(const ServiceServer&) = delete;
    ServiceServer& operator=(const ServiceServer&) = delete;

    /** Bind, listen and start the service threads. */
    Status start();

    /**
     * Graceful shutdown: stop accepting, drain every pending and
     * in-flight request (responses are written), join all threads,
     * close sockets, unlink the socket path.  Idempotent; safe from
     * any thread except the server's own worker threads.
     */
    void stop();

    /** True between a successful start() and the end of stop(). */
    bool running() const { return running_.load(); }

    /**
     * Flag this server for shutdown without performing it (safe from
     * worker threads; also triggered by the `shutdown` op).  A thread
     * blocked in waitForStopRequest() wakes and is expected to call
     * stop().
     */
    void requestStop();

    /** Block up to @p timeoutMs for requestStop(); true when flagged. */
    bool waitForStopRequest(int timeoutMs);

    /**
     * Snapshot of the svc.* counters: request/connection totals,
     * queue depth and peak, batch count and max size, cache
     * occupancy + hit/miss counters, and p50/p95/p99/max request
     * latency in microseconds (docs/SCHEMAS.md lists every key).
     */
    StatSet metrics() const;

    const std::string& socketPath() const { return cfg_.socketPath; }

  private:
    struct Conn
    {
        int fd = -1;
        std::mutex writeMu;
        std::atomic<bool> open{true};
        /** Requests enqueued but not yet responded to. */
        std::atomic<int> inflight{0};
        /** Reader exited; finish the socket once inflight hits 0. */
        std::atomic<bool> draining{false};
        /** Reader thread has returned (joinable without blocking). */
        std::atomic<bool> done{false};
    };

    /** One connection: its state and the thread reading from it. */
    struct ReaderSlot
    {
        std::shared_ptr<Conn> conn;
        std::thread thread;
    };

    struct Pending
    {
        std::shared_ptr<Conn> conn;
        SvcRequest req;
        uint64_t enqueuedUs = 0;
    };

    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn);
    void dispatchLoop();
    void handleOne(Pending& p);
    void sendOnConn(const std::shared_ptr<Conn>& conn,
                    const std::string& payload);
    void finishConn(Conn& conn);
    void recordLatency(uint64_t us);
    uint64_t nowUs() const;

    ServiceConfig cfg_;
    int listenFd_ = -1;
    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::chrono::steady_clock::time_point epoch_;

    std::mutex stopMu_;
    std::condition_variable stopCv_;
    bool stopRequested_ = false;
    bool stopped_ = false; ///< teardown finished (under stopMu_)

    std::thread acceptThread_;
    std::thread dispatchThread_;

    std::mutex connsMu_;
    std::vector<ReaderSlot> slots_;

    mutable std::mutex queueMu_;
    std::condition_variable queueCv_;
    std::deque<Pending> queue_;

    ResultCache cache_;

    mutable std::mutex metricsMu_;
    int64_t requestsTotal_ = 0;
    int64_t requestsControl_ = 0;
    int64_t requestsCompile_ = 0;
    int64_t requestsRejected_ = 0;
    int64_t protocolErrors_ = 0;
    int64_t batches_ = 0;
    int64_t batchMax_ = 0;
    int64_t queuePeak_ = 0;
    int64_t connectionsAccepted_ = 0;
    int64_t poolWorkers_ = 0;
    std::vector<uint32_t> latenciesUs_; ///< ring buffer, newest wraps
    size_t latencyNext_ = 0;
    int64_t latencyCount_ = 0;

    std::mutex traceMu_;
};

} // namespace cash

#endif // CASH_SERVICE_SERVER_H
