/**
 * @file
 * `cash` — the thin client for `cashd` (docs/SERVICE.md).  Connects
 * to the service socket, speaks `cash-svc-v1`, and renders results
 * in a cashc-compatible way so scripts can switch between the two.
 *
 * Usage:
 *   cash [--socket PATH] [--timeout MS] [--retries N]
 *        <command> [args]
 *
 * Connects with capped exponential backoff (--retries attempts, 50 ms
 * doubling to 1 s) so scripts can race the client against a cashd
 * that is still starting up; --timeout bounds every socket read and
 * write once connected.
 *
 * Commands:
 *   ping                       round-trip a ping frame
 *   version                    client + server version/protocol
 *   stats                      print the server's svc.* metrics JSON
 *   shutdown                   ask the server to stop gracefully
 *   compile FILE [options]     compile FILE (or `-` for stdin)
 *   analyze FILE [options]     compile + run the analysis lints
 *   simulate FILE --run SPEC [options]
 *
 * Compile-family options:
 *   -O0..-O3          optimization level (default -O3)
 *   --passes=a,b,...  explicit pass list (overrides -O)
 *   --run f(1,2,...)  simulate after compiling
 *   --mem MODEL       perfect|real1|real2|real4 (default real2)
 *   --engine NAME     event|macro (default macro)
 *   --target SPEC     unified target spec, e.g.
 *                     opt=O2,mem=real2,engine=macro,fabric=4x4:hop2
 *                     (validated server-side by the same TargetSpec
 *                     parser as cashc --target)
 *   --max-events N    simulator event budget
 *   --analyze[=r1,r2] run analysis lints (all rules or a subset)
 *   --analyze-strict  analysis errors block simulation
 *   --ordering-checks enable memory-ordering soundness checking
 *   --strict          treat pass verification failures as fatal
 *   --no-verify       skip IR verification between passes
 *   --dump-cfg | --dump-graph | --dot   request text dumps
 *   --label NAME      request label (shows up in server traces)
 *   --json            print the raw response body JSON instead of
 *                     rendering; control commands always print JSON
 *
 * Exit code mirrors cashc: the remote compile's exit code (0 ok,
 * 1 compile/sim error, 2 usage or analysis-blocked), and 3 when the
 * service itself is unreachable or speaks the wrong protocol.
 */
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "driver/driver_lib.h"
#include "service/client.h"

using namespace cash;

namespace {

int
usage()
{
    std::cerr <<
        "usage: cash [--socket PATH] [--timeout MS] [--retries N]\n"
        "            <command> [args]\n"
        "commands:\n"
        "  ping | version | stats | shutdown\n"
        "  compile FILE [-O0..3] [--passes=a,b] [--run f(1,2)]\n"
        "          [--mem MODEL] [--engine NAME] [--target SPEC]\n"
        "          [--max-events N] [--analyze[=rules]]\n"
        "          [--analyze-strict] [--ordering-checks] [--strict]\n"
        "          [--no-verify] [--dump-cfg] [--dump-graph] [--dot]\n"
        "          [--label NAME] [--json]\n"
        "  analyze FILE [...]     (compile + lints)\n"
        "  simulate FILE --run SPEC [...]\n";
    return 2;
}

std::string
defaultSocketPath()
{
    const char* env = std::getenv("CASH_SOCKET");
    return env && *env ? env : "/tmp/cashd.sock";
}

bool
readSource(const std::string& file, std::string* out)
{
    if (file == "-") {
        std::ostringstream ss;
        ss << std::cin.rdbuf();
        *out = ss.str();
        return true;
    }
    std::ifstream is(file);
    if (!is)
        return false;
    std::ostringstream ss;
    ss << is.rdbuf();
    *out = ss.str();
    return true;
}

Json
splitList(const std::string& csv)
{
    Json arr = Json::array();
    std::string cur;
    for (char c : csv) {
        if (c == ',') {
            if (!cur.empty())
                arr.push(Json::string(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        arr.push(Json::string(cur));
    return arr;
}

/** Render a compile-family response body the way cashc prints. */
int
renderBody(const Json& body)
{
    if (const Json* fatal = body.get("fatal"))
        std::cerr << "error: " << fatal->asString() << "\n";

    if (const Json* stats = body.get("stats")) {
        if (const Json* diags = stats->get("diagnostics")) {
            for (const Json& d : diags->items())
                std::cerr << "warning: pass '" << d.getString("pass")
                          << "' failed (" << d.getString("code")
                          << "): " << d.getString("message") << "\n";
        }
        if (const Json* analysis = stats->get("analysis")) {
            if (const Json* fs = analysis->get("findings"))
                for (const Json& f : fs->items())
                    std::cerr << f.getString("severity") << ": ["
                              << f.getString("rule") << "] "
                              << f.getString("function") << ": "
                              << f.getString("explanation") << "\n";
        }
    }
    if (const Json* analysis = body.get("analysis")) {
        if (analysis->getBool("blocked_run"))
            std::cerr << "analysis: errors reported with"
                         " --analyze-strict; skipping execution\n";
    }

    if (const Json* cfg = body.get("cfg"))
        std::cout << cfg->asString();
    if (const Json* graph = body.get("graph"))
        std::cout << graph->asString();
    if (const Json* dot = body.get("dot"))
        std::cout << dot->asString();

    if (const Json* sim = body.get("sim")) {
        if (sim->getString("outcome") == "ok") {
            std::cout << "returned " << sim->getInt("return") << " in "
                      << sim->getInt("cycles") << " cycles ("
                      << sim->getString("mem") << " memory)\n";
        } else {
            std::cerr << "simulation error: "
                      << sim->getString("error") << "\n";
            if (const Json* dl = sim->get("deadlock"))
                std::cerr << dl->asString();
        }
    }
    return static_cast<int>(body.getInt("exit", 1));
}

} // namespace

int
main(int argc, char** argv)
{
    std::string socketPath = defaultSocketPath();
    int64_t timeoutMs = 0;
    int retries = 5;
    int i = 1;
    while (i < argc && argv[i][0] == '-') {
        std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            socketPath = argv[i + 1];
            i += 2;
        } else if (arg == "--timeout" && i + 1 < argc) {
            timeoutMs = std::atoll(argv[i + 1]);
            i += 2;
        } else if (arg == "--retries" && i + 1 < argc) {
            retries = std::atoi(argv[i + 1]);
            i += 2;
        } else {
            return usage();
        }
    }
    if (i >= argc)
        return usage();
    std::string cmd = argv[i++];

    if (cmd == "version" && i >= argc) {
        // Print the client version even when no server is running.
        std::cout << versionString("cash") << "\n";
    }

    ServiceClient client;
    if (timeoutMs > 0)
        client.setIoTimeoutMs(timeoutMs);
    Status st = client.connectWithRetry(socketPath, retries);
    if (!st) {
        std::cerr << "cash: " << st.message() << "\n";
        return 3;
    }

    if (cmd == "ping") {
        st = client.ping();
        if (!st) {
            std::cerr << "cash: " << st.message() << "\n";
            return 3;
        }
        std::cout << "ok\n";
        return 0;
    }
    if (cmd == "version") {
        std::cout << "server: " << client.hello().getString("server")
                  << " " << client.hello().getString("version")
                  << " (" << client.hello().getString("schema")
                  << ", protocol "
                  << client.hello().getInt("protocol") << ")\n";
        return 0;
    }
    if (cmd == "stats") {
        Json resp;
        st = client.metrics(&resp);
        if (!st) {
            std::cerr << "cash: " << st.message() << "\n";
            return 3;
        }
        const Json* body = resp.get("body");
        std::cout << (body ? body->dump() : resp.dump()) << "\n";
        return 0;
    }
    if (cmd == "shutdown") {
        st = client.shutdownServer();
        if (!st) {
            std::cerr << "cash: " << st.message() << "\n";
            return 3;
        }
        std::cout << "shutdown requested\n";
        return 0;
    }

    if (cmd != "compile" && cmd != "analyze" && cmd != "simulate")
        return usage();
    if (i >= argc)
        return usage();
    std::string file = argv[i++];

    Json options = Json::object();
    std::string label;
    bool rawJson = false;
    for (; i < argc; i++) {
        std::string arg = argv[i];
        if (arg.rfind("-O", 0) == 0 && arg.size() == 3) {
            options.set("opt", Json::string(arg.substr(2)));
        } else if (arg.rfind("--passes=", 0) == 0) {
            options.set("passes", splitList(arg.substr(9)));
        } else if (arg == "--run" && i + 1 < argc) {
            options.set("run", Json::string(argv[++i]));
        } else if (arg == "--mem" && i + 1 < argc) {
            options.set("mem", Json::string(argv[++i]));
        } else if (arg == "--engine" && i + 1 < argc) {
            options.set("engine", Json::string(argv[++i]));
        } else if (arg == "--target" && i + 1 < argc) {
            options.set("target", Json::string(argv[++i]));
        } else if (arg.rfind("--target=", 0) == 0) {
            options.set("target", Json::string(arg.substr(9)));
        } else if (arg == "--max-events" && i + 1 < argc) {
            options.set("max_events",
                        Json::number(
                            static_cast<int64_t>(std::atoll(argv[++i]))));
        } else if (arg == "--analyze") {
            options.set("analyze", Json::boolean(true));
        } else if (arg.rfind("--analyze=", 0) == 0) {
            options.set("analyze", Json::boolean(true));
            options.set("analyze_rules", splitList(arg.substr(10)));
        } else if (arg == "--analyze-strict") {
            options.set("analyze", Json::boolean(true));
            options.set("analyze_strict", Json::boolean(true));
        } else if (arg == "--ordering-checks") {
            options.set("ordering_checks", Json::boolean(true));
        } else if (arg == "--strict") {
            options.set("strict", Json::boolean(true));
        } else if (arg == "--no-verify") {
            options.set("verify", Json::boolean(false));
        } else if (arg == "--dump-cfg") {
            options.set("cfg", Json::boolean(true));
        } else if (arg == "--dump-graph") {
            options.set("graph", Json::boolean(true));
        } else if (arg == "--dot") {
            options.set("dot", Json::boolean(true));
        } else if (arg == "--label" && i + 1 < argc) {
            label = argv[++i];
        } else if (arg == "--json") {
            rawJson = true;
        } else {
            return usage();
        }
    }

    std::string source;
    if (!readSource(file, &source)) {
        std::cerr << "cash: cannot read " << file << "\n";
        return 2;
    }
    if (label.empty() && file != "-")
        label = file;

    Json req = makeCompileRequest(cmd, source, std::move(options),
                                  label);
    Json resp;
    st = client.call(std::move(req), &resp);
    if (!st) {
        std::cerr << "cash: " << st.message() << "\n";
        return 3;
    }
    if (!resp.getBool("ok")) {
        const Json* err = resp.get("error");
        std::cerr << "cash: request rejected ("
                  << (err ? err->getString("code") : "unknown")
                  << "): "
                  << (err ? err->getString("message") : "") << "\n";
        return 2;
    }
    const Json* body = resp.get("body");
    if (!body) {
        std::cerr << "cash: malformed response (no body)\n";
        return 3;
    }
    if (rawJson) {
        std::cout << body->dump() << "\n";
        return static_cast<int>(body->getInt("exit", 1));
    }
    return renderBody(*body);
}
