#include "service/client.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace cash {

ServiceClient::~ServiceClient()
{
    close();
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    hello_ = Json();
}

Status
ServiceClient::connect(const std::string& socketPath)
{
    close();
    retryable_ = false;

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof(addr.sun_path))
        return Status::error(ErrorCode::InternalError,
                             "socket path too long: " + socketPath);
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0)
        return Status::error(ErrorCode::InternalError,
                             std::string("socket: ") +
                                 std::strerror(errno));
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
        // Server not up yet / backlog full: a retry can succeed.
        retryable_ = errno == ECONNREFUSED || errno == ENOENT ||
                     errno == EAGAIN || errno == EINTR;
        Status st = Status::error(ErrorCode::InternalError,
                                  "connect " + socketPath + ": " +
                                      std::strerror(errno));
        close();
        return st;
    }
    Status tst = applyIoTimeout();
    if (!tst) {
        close();
        return tst;
    }

    std::string payload;
    bool eof = false;
    Status st = readFrame(fd_, &payload, &eof);
    if (st.isOk() && eof)
        st = Status::error(ErrorCode::InternalError,
                           "server closed before hello");
    if (st.isOk())
        st = Json::parse(payload, &hello_);
    if (st.isOk() && hello_.getString("schema") != kSvcSchema)
        st = Status::error(ErrorCode::InternalError,
                           "incompatible server: schema '" +
                               hello_.getString("schema") +
                               "', want '" + kSvcSchema + "'");
    if (st.isOk() &&
        hello_.getInt("protocol") != kSvcProtocolVersion)
        st = Status::error(
            ErrorCode::InternalError,
            "incompatible server: protocol " +
                std::to_string(hello_.getInt("protocol")) + ", want " +
                std::to_string(kSvcProtocolVersion) + " (server " +
                hello_.getString("version") + ", client " +
                kCashVersion + ")");
    if (!st.isOk()) {
        close();
        return st;
    }
    return Status::ok();
}

Status
ServiceClient::connectWithRetry(const std::string& socketPath,
                                int attempts, int initialDelayMs)
{
    constexpr int kMaxDelayMs = 1000;
    Status st = Status::ok();
    int delay = initialDelayMs > 0 ? initialDelayMs : 1;
    for (int attempt = 0; attempt < std::max(attempts, 1); attempt++) {
        if (attempt > 0) {
            ::usleep(static_cast<useconds_t>(delay) * 1000);
            delay = std::min(delay * 2, kMaxDelayMs);
        }
        st = connect(socketPath);
        if (st.isOk() || !retryable_)
            return st;
    }
    return st;
}

Status
ServiceClient::setIoTimeoutMs(int64_t ms)
{
    ioTimeoutMs_ = ms > 0 ? ms : 0;
    return applyIoTimeout();
}

Status
ServiceClient::applyIoTimeout()
{
    if (fd_ < 0)
        return Status::ok();
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ioTimeoutMs_ / 1000);
    tv.tv_usec =
        static_cast<suseconds_t>((ioTimeoutMs_ % 1000) * 1000);
    if (::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) <
            0 ||
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) <
            0)
        return Status::error(ErrorCode::InternalError,
                             std::string("setsockopt: ") +
                                 std::strerror(errno));
    return Status::ok();
}

Status
ServiceClient::call(Json request, Json* response, std::string* raw)
{
    if (fd_ < 0)
        return Status::error(ErrorCode::InternalError,
                             "not connected");
    int64_t id;
    if (const Json* v = request.get("id")) {
        id = v->asInt();
    } else {
        id = nextId_++;
        request.set("id", Json::number(id));
    }

    Status st = writeFrame(fd_, request.dump());
    if (!st)
        return st;

    std::string payload;
    bool eof = false;
    st = readFrame(fd_, &payload, &eof);
    if (!st)
        return st;
    if (eof)
        return Status::error(ErrorCode::InternalError,
                             "server closed the connection");
    if (raw)
        *raw = payload;
    st = Json::parse(payload, response);
    if (!st)
        return st;
    if (response->getInt("id", -1) != id &&
        response->getBool("ok", false))
        return Status::error(ErrorCode::InternalError,
                             "response id mismatch");
    return Status::ok();
}

Status
ServiceClient::ping()
{
    Json req = Json::object();
    req.set("op", Json::string("ping"));
    Json resp;
    Status st = call(std::move(req), &resp);
    if (!st)
        return st;
    if (!resp.getBool("ok"))
        return Status::error(ErrorCode::InternalError,
                             "ping rejected");
    return Status::ok();
}

Status
ServiceClient::metrics(Json* response)
{
    Json req = Json::object();
    req.set("op", Json::string("metrics"));
    return call(std::move(req), response);
}

Status
ServiceClient::shutdownServer()
{
    Json req = Json::object();
    req.set("op", Json::string("shutdown"));
    Json resp;
    return call(std::move(req), &resp);
}

Json
makeCompileRequest(const std::string& op, const std::string& source,
                   Json options, const std::string& label)
{
    Json req = Json::object();
    req.set("op", Json::string(op));
    if (!label.empty())
        req.set("label", Json::string(label));
    req.set("source", Json::string(source));
    if (options.isObject() && !options.members().empty())
        req.set("options", std::move(options));
    return req;
}

} // namespace cash
