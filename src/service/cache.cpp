#include "service/cache.h"

namespace cash {

ResultCache::ResultCache(size_t maxEntries, size_t maxBytes)
    : maxEntries_(maxEntries), maxBytes_(maxBytes)
{
}

bool
ResultCache::lookup(const std::string& key, std::string* body)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
        stats_.misses++;
        return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    *body = it->second->body;
    stats_.hits++;
    return true;
}

void
ResultCache::insert(const std::string& key, std::string body)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
        bytes_ -= it->second->body.size();
        bytes_ += body.size();
        it->second->body = std::move(body);
        lru_.splice(lru_.begin(), lru_, it->second);
    } else {
        lru_.push_front(Entry{key, std::move(body)});
        index_[key] = lru_.begin();
        bytes_ += lru_.front().body.size();
        stats_.insertions++;
    }
    evictIfNeededLocked();
}

void
ResultCache::evictIfNeededLocked()
{
    while (!lru_.empty() &&
           ((maxEntries_ && lru_.size() > maxEntries_) ||
            (maxBytes_ && bytes_ > maxBytes_ && lru_.size() > 1))) {
        const Entry& victim = lru_.back();
        bytes_ -= victim.body.size();
        index_.erase(victim.key);
        lru_.pop_back();
        stats_.evictions++;
    }
}

void
ResultCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
    bytes_ = 0;
}

ResultCache::Stats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s = stats_;
    s.entries = static_cast<int64_t>(lru_.size());
    s.bytes = static_cast<int64_t>(bytes_);
    return s;
}

} // namespace cash
