#include "service/server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/thread_pool.h"

namespace cash {

namespace {

/** Latency ring-buffer capacity: enough for percentile stability. */
constexpr size_t kLatencyWindow = 1u << 16;

} // namespace

ServiceServer::ServiceServer(ServiceConfig cfg)
    : cfg_(std::move(cfg)),
      epoch_(std::chrono::steady_clock::now()),
      cache_(cfg_.cacheEntries, cfg_.cacheBytes)
{
}

ServiceServer::~ServiceServer()
{
    stop();
}

uint64_t
ServiceServer::nowUs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

Status
ServiceServer::start()
{
    if (running_.load())
        return Status::error(ErrorCode::InternalError,
                             "server already running");
    if (cfg_.socketPath.empty())
        return Status::error(ErrorCode::InternalError,
                             "socketPath is required");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socketPath.size() >= sizeof(addr.sun_path))
        return Status::error(ErrorCode::InternalError,
                             "socket path too long: " +
                                 cfg_.socketPath);
    std::strncpy(addr.sun_path, cfg_.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        return Status::error(ErrorCode::InternalError,
                             std::string("socket: ") +
                                 std::strerror(errno));
    // Take over stale sockets from a crashed predecessor.
    ::unlink(cfg_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
        Status st = Status::error(ErrorCode::InternalError,
                                  "bind " + cfg_.socketPath + ": " +
                                      std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return st;
    }
    if (::listen(listenFd_, cfg_.backlog) < 0) {
        Status st = Status::error(ErrorCode::InternalError,
                                  std::string("listen: ") +
                                      std::strerror(errno));
        ::close(listenFd_);
        listenFd_ = -1;
        return st;
    }

    stopping_.store(false);
    {
        std::lock_guard<std::mutex> lock(stopMu_);
        stopRequested_ = false;
        stopped_ = false;
    }
    running_.store(true);
    acceptThread_ = std::thread(&ServiceServer::acceptLoop, this);
    dispatchThread_ = std::thread(&ServiceServer::dispatchLoop, this);
    return Status::ok();
}

void
ServiceServer::requestStop()
{
    std::lock_guard<std::mutex> lock(stopMu_);
    stopRequested_ = true;
    stopCv_.notify_all();
}

bool
ServiceServer::waitForStopRequest(int timeoutMs)
{
    std::unique_lock<std::mutex> lock(stopMu_);
    stopCv_.wait_for(lock, std::chrono::milliseconds(timeoutMs),
                     [&] { return stopRequested_; });
    return stopRequested_;
}

void
ServiceServer::stop()
{
    {
        std::lock_guard<std::mutex> lock(stopMu_);
        stopRequested_ = true;
        stopCv_.notify_all();
        if (stopped_ || !running_.load())
            return;
        stopped_ = true; // claim the teardown
    }

    // 1. No new connections.
    stopping_.store(true);
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }

    // 2. No new requests: half-close every connection for reading and
    //    wait for the readers to finish their current frame.
    std::vector<ReaderSlot> slots;
    {
        std::lock_guard<std::mutex> lock(connsMu_);
        slots.swap(slots_);
    }
    for (const ReaderSlot& s : slots)
        if (s.conn->open.load())
            ::shutdown(s.conn->fd, SHUT_RD);
    for (ReaderSlot& s : slots)
        if (s.thread.joinable())
            s.thread.join();

    // 3. Drain: the dispatcher exits once the queue is empty, after
    //    writing every in-flight response.
    queueCv_.notify_all();
    if (dispatchThread_.joinable())
        dispatchThread_.join();

    // 4. Now nothing touches the sockets anymore.
    for (const ReaderSlot& s : slots) {
        s.conn->open.store(false);
        ::close(s.conn->fd);
    }
    ::unlink(cfg_.socketPath.c_str());
    running_.store(false);
}

void
ServiceServer::acceptLoop()
{
    while (!stopping_.load()) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            break; // listener closed (shutdown) or fatal
        }
        {
            std::lock_guard<std::mutex> lock(connsMu_);
            if (stopping_.load()) {
                ::close(fd);
                break;
            }
            // Reap finished connections so a long-lived daemon does
            // not accumulate one dead thread per past client.  A slot
            // is reapable once its reader returned (`done`) and its
            // last response went out (`!open`, set by finishConn).
            for (auto it = slots_.begin(); it != slots_.end();) {
                if (it->conn->done.load() && !it->conn->open.load()) {
                    if (it->thread.joinable())
                        it->thread.join();
                    {
                        std::lock_guard<std::mutex> wl(
                            it->conn->writeMu);
                        ::close(it->conn->fd);
                    }
                    it = slots_.erase(it);
                } else {
                    ++it;
                }
            }
            auto conn = std::make_shared<Conn>();
            conn->fd = fd;
            ReaderSlot slot;
            slot.conn = conn;
            slot.thread = std::thread(&ServiceServer::readerLoop,
                                      this, conn);
            slots_.push_back(std::move(slot));
        }
        {
            std::lock_guard<std::mutex> lock(metricsMu_);
            connectionsAccepted_++;
        }
    }
}

void
ServiceServer::sendOnConn(const std::shared_ptr<Conn>& conn,
                          const std::string& payload)
{
    std::lock_guard<std::mutex> lock(conn->writeMu);
    if (!conn->open.load())
        return;
    if (!writeFrame(conn->fd, payload))
        conn->open.store(false); // peer went away; drop quietly
}

void
ServiceServer::finishConn(Conn& conn)
{
    // Signal EOF to the peer once no response can follow.  The fd
    // itself is closed by stop() (after every thread that could touch
    // it has been joined), so hanging up twice is harmless.
    std::lock_guard<std::mutex> lock(conn.writeMu);
    if (conn.open.exchange(false))
        ::shutdown(conn.fd, SHUT_RDWR);
}

void
ServiceServer::readerLoop(std::shared_ptr<Conn> conn)
{
    sendOnConn(conn, svcHello());

    while (!stopping_.load() && conn->open.load()) {
        std::string payload;
        bool eof = false;
        Status st = readFrame(conn->fd, &payload, &eof,
                              cfg_.maxFrameBytes);
        if (eof)
            break;
        if (!st) {
            // Frame-level damage: the byte stream is unsynchronized,
            // so answer once and hang up.
            {
                std::lock_guard<std::mutex> lock(metricsMu_);
                protocolErrors_++;
            }
            sendOnConn(conn, svcErrorResponse(0, "", kSvcErrBadFrame,
                                              st.message()));
            break;
        }

        Json j;
        st = Json::parse(payload, &j);
        if (!st) {
            // Bad JSON in a well-formed frame: recoverable.
            {
                std::lock_guard<std::mutex> lock(metricsMu_);
                protocolErrors_++;
            }
            sendOnConn(conn, svcErrorResponse(0, "", kSvcErrBadRequest,
                                              st.message()));
            continue;
        }
        SvcRequest req;
        st = parseSvcRequest(j, &req);
        if (!st) {
            {
                std::lock_guard<std::mutex> lock(metricsMu_);
                protocolErrors_++;
            }
            sendOnConn(conn,
                       svcErrorResponse(j.getInt("id"),
                                        j.getString("op"),
                                        kSvcErrBadRequest,
                                        st.message()));
            continue;
        }

        if (!req.isCompileFamily()) {
            std::lock_guard<std::mutex> lock(metricsMu_);
            requestsTotal_++;
            requestsControl_++;
        }
        switch (req.op) {
          case SvcOp::Ping: {
              Json body = Json::object();
              body.set("pong", Json::boolean(true));
              body.set("version", Json::string(kCashVersion));
              sendOnConn(conn, svcResponse(req, false, body.dump()));
              continue;
          }
          case SvcOp::Metrics: {
              StatSet m = metrics();
              Json counters = Json::object();
              for (const auto& [k, v] : m.all())
                  counters.set(k, Json::number(v));
              Json body = Json::object();
              body.set("metrics", std::move(counters));
              sendOnConn(conn, svcResponse(req, false, body.dump()));
              continue;
          }
          case SvcOp::Shutdown: {
              Json body = Json::object();
              body.set("stopping", Json::boolean(true));
              sendOnConn(conn, svcResponse(req, false, body.dump()));
              requestStop();
              continue;
          }
          default:
              break;
        }

        Pending p;
        p.conn = conn;
        p.req = std::move(req);
        p.enqueuedUs = nowUs();
        bool rejected = false;
        size_t depth = 0;
        conn->inflight.fetch_add(1); // before the queue can drain it
        {
            std::lock_guard<std::mutex> lock(queueMu_);
            if (cfg_.maxQueueDepth &&
                queue_.size() >= cfg_.maxQueueDepth) {
                rejected = true;
            } else {
                queue_.push_back(std::move(p));
                depth = queue_.size();
            }
        }
        if (rejected)
            conn->inflight.fetch_sub(1);
        if (rejected) {
            {
                std::lock_guard<std::mutex> lock(metricsMu_);
                requestsTotal_++;
                requestsRejected_++;
            }
            sendOnConn(conn,
                       svcErrorResponse(
                           p.req.id, svcOpName(p.req.op),
                           kSvcErrOverloaded,
                           "pending queue is full (" +
                               std::to_string(cfg_.maxQueueDepth) +
                               " requests); retry later"));
            continue;
        }
        {
            std::lock_guard<std::mutex> lock(metricsMu_);
            requestsTotal_++;
            requestsCompile_++;
            queuePeak_ =
                std::max(queuePeak_, static_cast<int64_t>(depth));
        }
        queueCv_.notify_one();
    }
    // Don't close yet: responses for this connection's enqueued
    // requests must still go out (the drain guarantee).  The last
    // responder — or we, when nothing is in flight — hangs up.
    conn->draining.store(true);
    if (conn->inflight.load() == 0)
        finishConn(*conn);
    conn->done.store(true);
}

void
ServiceServer::dispatchLoop()
{
    // The pool is created (and parallelFor called) on this thread:
    // it is the batch owner.
    ThreadPool pool(cfg_.jobs);
    {
        std::lock_guard<std::mutex> lock(metricsMu_);
        poolWorkers_ = pool.workers();
    }

    while (true) {
        std::vector<Pending> batch;
        {
            std::unique_lock<std::mutex> lock(queueMu_);
            queueCv_.wait(lock, [&] {
                return stopping_.load() || !queue_.empty();
            });
            if (queue_.empty()) {
                if (stopping_.load())
                    break;
                continue;
            }
            batch.reserve(queue_.size());
            for (Pending& p : queue_)
                batch.push_back(std::move(p));
            queue_.clear();
        }
        {
            std::lock_guard<std::mutex> lock(metricsMu_);
            batches_++;
            batchMax_ = std::max(batchMax_,
                                 static_cast<int64_t>(batch.size()));
        }
        if (cfg_.tracer && cfg_.tracer->enabled()) {
            std::lock_guard<std::mutex> lock(traceMu_);
            cfg_.tracer->counterEvent("svc.batch", cfg_.tracer->nowUs(),
                                      static_cast<int64_t>(batch.size()),
                                      kTraceWallPid);
        }
        pool.parallelFor(batch.size(), [&](size_t i, int) {
            try {
                handleOne(batch[i]);
            } catch (const std::exception& e) {
                sendOnConn(batch[i].conn,
                           svcErrorResponse(batch[i].req.id,
                                            svcOpName(batch[i].req.op),
                                            "internal_error",
                                            e.what()));
            }
            Conn& c = *batch[i].conn;
            if (c.inflight.fetch_sub(1) == 1 && c.draining.load())
                finishConn(c);
        });
    }
}

void
ServiceServer::handleOne(Pending& p)
{
    const std::string key = svcCacheKey(p.req);
    std::string body;
    bool cached = cache_.lookup(key, &body);
    if (!cached) {
        DriverRequest d = p.req.driver;
        // Parallelism comes from request-level batching; each compile
        // runs serially on its pool worker.  Fault injection and
        // tracing are local concerns, never remote-controlled.
        d.jobs = 1;
        d.faults = nullptr;
        d.tracer = nullptr;
        // Guardrails: clamp the event budget and arm the wall-clock
        // guard so a pathological graph cannot pin this pool worker.
        if (cfg_.maxEventsCap &&
            (d.maxEvents == 0 || d.maxEvents > cfg_.maxEventsCap))
            d.maxEvents = cfg_.maxEventsCap;
        d.simWallMs = cfg_.simWallMs;
        DriverReply rep = runDriverRequest(d);
        body = svcResultBody(p.req, rep);
        // A timeout reflects host load at the moment of the run, not
        // the request: caching it would pin the degraded result.
        if (!(rep.ranSim && rep.simOutcome == SimOutcome::Timeout))
            cache_.insert(key, body);
    }
    // Record before sending so a client that reads its response and
    // immediately polls metrics() observes its own request.
    uint64_t durUs = nowUs() - p.enqueuedUs;
    recordLatency(durUs);
    sendOnConn(p.conn, svcResponse(p.req, cached, body));
    if (cfg_.tracer && cfg_.tracer->enabled()) {
        std::lock_guard<std::mutex> lock(traceMu_);
        uint64_t end = cfg_.tracer->nowUs();
        uint64_t start = end > durUs ? end - durUs : 0;
        cfg_.tracer->completeEvent(
            svcOpName(p.req.op), "svc", start, durUs,
            {TraceArg("cached", static_cast<int64_t>(cached))},
            kTraceWallPid);
    }
}

void
ServiceServer::recordLatency(uint64_t us)
{
    uint32_t v = us > 0xFFFFFFFFull ? 0xFFFFFFFFu
                                    : static_cast<uint32_t>(us);
    std::lock_guard<std::mutex> lock(metricsMu_);
    if (latenciesUs_.size() < kLatencyWindow) {
        latenciesUs_.push_back(v);
    } else {
        latenciesUs_[latencyNext_] = v;
        latencyNext_ = (latencyNext_ + 1) % kLatencyWindow;
    }
    latencyCount_++;
}

StatSet
ServiceServer::metrics() const
{
    StatSet m;
    size_t depth;
    {
        std::lock_guard<std::mutex> lock(queueMu_);
        depth = queue_.size();
    }
    ResultCache::Stats cs = cache_.stats();

    std::vector<uint32_t> lat;
    {
        std::lock_guard<std::mutex> lock(metricsMu_);
        m.set("svc.protocol", kSvcProtocolVersion);
        m.add("svc.requests.total", requestsTotal_);
        m.add("svc.requests.control", requestsControl_);
        m.add("svc.requests.compile", requestsCompile_);
        m.add("svc.requests.rejected", requestsRejected_);
        m.add("svc.protocol.errors", protocolErrors_);
        m.add("svc.batches", batches_);
        m.set("svc.batch.max", batchMax_);
        m.set("svc.queue.peak", queuePeak_);
        m.add("svc.connections.accepted", connectionsAccepted_);
        m.set("svc.pool.workers", poolWorkers_);
        m.set("svc.latency.count", latencyCount_);
        lat = latenciesUs_;
    }
    m.set("svc.queue.depth", static_cast<int64_t>(depth));
    m.add("svc.cache.hits", cs.hits);
    m.add("svc.cache.misses", cs.misses);
    m.add("svc.cache.insertions", cs.insertions);
    m.add("svc.cache.evictions", cs.evictions);
    m.set("svc.cache.entries", cs.entries);
    m.set("svc.cache.bytes", cs.bytes);
    int64_t lookups = cs.hits + cs.misses;
    m.set("svc.cache.hit_rate_pct",
          lookups ? (100 * cs.hits) / lookups : 0);

    if (!lat.empty()) {
        std::sort(lat.begin(), lat.end());
        auto pick = [&](double q) {
            size_t idx = static_cast<size_t>(
                q * static_cast<double>(lat.size() - 1));
            return static_cast<int64_t>(lat[idx]);
        };
        m.set("svc.latency.p50_us", pick(0.50));
        m.set("svc.latency.p95_us", pick(0.95));
        m.set("svc.latency.p99_us", pick(0.99));
        m.set("svc.latency.max_us",
              static_cast<int64_t>(lat.back()));
    }
    return m;
}

} // namespace cash
