#include "service/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "support/strings.h"
#include "support/trace.h"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace cash {

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

namespace {

/** recv() exactly @p n bytes; returns bytes read (< n on EOF/error). */
ssize_t
recvAll(int fd, char* buf, size_t n)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r = ::recv(fd, buf + got, n - got, 0);
        if (r == 0)
            break;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        got += static_cast<size_t>(r);
    }
    return static_cast<ssize_t>(got);
}

} // namespace

Status
readFrame(int fd, std::string* payload, bool* cleanEof,
          uint32_t maxBytes)
{
    payload->clear();
    *cleanEof = false;

    unsigned char hdr[4];
    ssize_t got = recvAll(fd, reinterpret_cast<char*>(hdr), 4);
    if (got == 0) {
        *cleanEof = true;
        return Status::ok();
    }
    if (got < 0)
        return Status::error(ErrorCode::InternalError,
                             std::string("recv: ") +
                                 std::strerror(errno));
    if (got < 4)
        return Status::error(ErrorCode::ParseError,
                             "truncated frame header");

    uint32_t len = (static_cast<uint32_t>(hdr[0]) << 24) |
                   (static_cast<uint32_t>(hdr[1]) << 16) |
                   (static_cast<uint32_t>(hdr[2]) << 8) |
                   static_cast<uint32_t>(hdr[3]);
    if (len > maxBytes)
        return Status::error(ErrorCode::ParseError,
                             "frame of " + std::to_string(len) +
                                 " bytes exceeds the " +
                                 std::to_string(maxBytes) +
                                 "-byte limit");
    payload->resize(len);
    if (len > 0) {
        got = recvAll(fd, payload->data(), len);
        if (got < 0)
            return Status::error(ErrorCode::InternalError,
                                 std::string("recv: ") +
                                     std::strerror(errno));
        if (static_cast<uint32_t>(got) < len)
            return Status::error(ErrorCode::ParseError,
                                 "truncated frame payload (" +
                                     std::to_string(got) + " of " +
                                     std::to_string(len) + " bytes)");
    }
    return Status::ok();
}

Status
writeFrame(int fd, const std::string& payload)
{
    if (payload.size() > 0xFFFFFFFFull)
        return Status::error(ErrorCode::InternalError,
                             "frame payload too large");
    uint32_t len = static_cast<uint32_t>(payload.size());
    unsigned char hdr[4] = {
        static_cast<unsigned char>(len >> 24),
        static_cast<unsigned char>(len >> 16),
        static_cast<unsigned char>(len >> 8),
        static_cast<unsigned char>(len),
    };
    std::string buf(reinterpret_cast<char*>(hdr), 4);
    buf += payload;

    size_t sent = 0;
    while (sent < buf.size()) {
        ssize_t w =
            ::send(fd, buf.data() + sent, buf.size() - sent,
                   MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return Status::error(ErrorCode::InternalError,
                                 std::string("send: ") +
                                     std::strerror(errno));
        }
        sent += static_cast<size_t>(w);
    }
    return Status::ok();
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

const char*
svcOpName(SvcOp op)
{
    switch (op) {
      case SvcOp::Ping: return "ping";
      case SvcOp::Compile: return "compile";
      case SvcOp::Analyze: return "analyze";
      case SvcOp::Simulate: return "simulate";
      case SvcOp::Metrics: return "metrics";
      case SvcOp::Shutdown: return "shutdown";
    }
    return "?";
}

namespace {

Status
badRequest(const std::string& msg)
{
    return Status::error(ErrorCode::ParseError, msg);
}

Status
parseStringList(const Json& opts, const char* key,
                std::vector<std::string>* out)
{
    const Json* v = opts.get(key);
    if (!v)
        return Status::ok();
    if (!v->isArray())
        return badRequest(std::string("options.") + key +
                          " must be an array of strings");
    for (const Json& e : v->items()) {
        if (!e.isString())
            return badRequest(std::string("options.") + key +
                              " must be an array of strings");
        out->push_back(e.asString());
    }
    return Status::ok();
}

} // namespace

Status
parseSvcRequest(const Json& j, SvcRequest* out)
{
    *out = SvcRequest();
    if (!j.isObject())
        return badRequest("request must be a JSON object");

    const Json* opv = j.get("op");
    if (!opv || !opv->isString())
        return badRequest("missing string field 'op'");
    const std::string& op = opv->asString();
    if (op == "ping")
        out->op = SvcOp::Ping;
    else if (op == "compile")
        out->op = SvcOp::Compile;
    else if (op == "analyze")
        out->op = SvcOp::Analyze;
    else if (op == "simulate")
        out->op = SvcOp::Simulate;
    else if (op == "metrics")
        out->op = SvcOp::Metrics;
    else if (op == "shutdown")
        out->op = SvcOp::Shutdown;
    else
        return badRequest("unknown op '" + op + "'");

    const Json* idv = j.get("id");
    if (idv) {
        if (!idv->isNumber())
            return badRequest("'id' must be a number");
        out->id = idv->asInt();
    }
    out->label = j.getString("label");

    if (!out->isCompileFamily())
        return Status::ok();

    const Json* src = j.get("source");
    if (!src || !src->isString())
        return badRequest("missing string field 'source'");
    out->driver.source = src->asString();

    const Json* optsv = j.get("options");
    if (optsv && !optsv->isObject())
        return badRequest("'options' must be an object");
    static const Json kEmpty = Json::object();
    const Json& opts = optsv ? *optsv : kEmpty;

    if (const Json* v = opts.get("opt")) {
        if (!v->isString())
            return badRequest("options.opt must be a string");
        Status st = out->driver.target.setField("opt", v->asString());
        if (!st)
            return badRequest(st.message());
    }
    Status st = parseStringList(opts, "passes", &out->driver.passNames);
    if (!st)
        return st;
    if (const Json* v = opts.get("jobs")) {
        if (!v->isNumber())
            return badRequest("options.jobs must be a number");
        out->driver.jobs = static_cast<int>(v->asInt());
    }
    if (const Json* v = opts.get("verify")) {
        if (!v->isBool())
            return badRequest("options.verify must be a boolean");
        out->driver.verify = v->asBool();
    }
    if (const Json* v = opts.get("ordering_checks")) {
        if (!v->isBool())
            return badRequest(
                "options.ordering_checks must be a boolean");
        out->driver.orderingChecks = v->asBool();
    }
    if (const Json* v = opts.get("strict")) {
        if (!v->isBool())
            return badRequest("options.strict must be a boolean");
        out->driver.strict = v->asBool();
    }
    if (const Json* v = opts.get("analyze")) {
        if (!v->isBool())
            return badRequest("options.analyze must be a boolean");
        out->driver.analyze = v->asBool();
    }
    if (const Json* v = opts.get("analyze_strict")) {
        if (!v->isBool())
            return badRequest(
                "options.analyze_strict must be a boolean");
        out->driver.analyzeStrict = v->asBool();
        if (v->asBool())
            out->driver.analyze = true;
    }
    st = parseStringList(opts, "analyze_rules",
                         &out->driver.analyzeRules);
    if (!st)
        return st;
    if (!out->driver.analyzeRules.empty())
        out->driver.analyze = true;
    if (const Json* v = opts.get("run")) {
        if (!v->isString())
            return badRequest("options.run must be a string");
        out->driver.runSpec = v->asString();
    }
    if (const Json* v = opts.get("mem")) {
        if (!v->isString())
            return badRequest("options.mem must be a string");
        Status ms = out->driver.target.setField("mem", v->asString());
        if (!ms)
            return badRequest(ms.message());
    }
    if (const Json* v = opts.get("engine")) {
        if (!v->isString())
            return badRequest("options.engine must be a string");
        Status es =
            out->driver.target.setField("engine", v->asString());
        if (!es)
            return badRequest(es.message());
    }
    // options.target: the unified TargetSpec (docs/SCHEMAS.md) —
    // either the canonical spec string or an object with per-field
    // strings.  Validated by the same TargetSpec code path as `cashc
    // --target`, and applied after the legacy options above so its
    // fields win (field-level last-setting-wins, like the CLI).
    if (const Json* v = opts.get("target")) {
        if (v->isString()) {
            Status ts = out->driver.target.merge(v->asString());
            if (!ts)
                return badRequest("options.target: " + ts.message());
        } else if (v->isObject()) {
            for (const char* key :
                 {"opt", "mem", "engine", "fabric", "ipo"}) {
                const Json* f = v->get(key);
                if (!f)
                    continue;
                if (!f->isString())
                    return badRequest("options.target." +
                                      std::string(key) +
                                      " must be a string");
                Status ts =
                    out->driver.target.setField(key, f->asString());
                if (!ts)
                    return badRequest("options.target: " +
                                      ts.message());
            }
        } else {
            return badRequest(
                "options.target must be a string or an object");
        }
    }
    if (const Json* v = opts.get("max_events")) {
        if (!v->isNumber() || v->asInt() < 0)
            return badRequest(
                "options.max_events must be a non-negative number");
        out->driver.maxEvents = static_cast<uint64_t>(v->asInt());
    }
    if (const Json* v = opts.get("cfg")) {
        if (!v->isBool())
            return badRequest("options.cfg must be a boolean");
        out->driver.wantCfg = v->asBool();
    }
    if (const Json* v = opts.get("graph")) {
        if (!v->isBool())
            return badRequest("options.graph must be a boolean");
        out->driver.wantGraphText = v->asBool();
    }
    if (const Json* v = opts.get("dot")) {
        if (!v->isBool())
            return badRequest("options.dot must be a boolean");
        out->driver.wantDot = v->asBool();
    }

    if (out->op == SvcOp::Analyze)
        out->driver.analyze = true;
    if (out->op == SvcOp::Simulate && out->driver.runSpec.empty())
        return badRequest("op 'simulate' requires options.run");
    if (!out->driver.runSpec.empty()) {
        std::string fn;
        std::vector<uint32_t> args;
        Status rs = parseRunSpec(out->driver.runSpec, &fn, &args);
        if (!rs)
            return badRequest(rs.message());
    }
    return Status::ok();
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

std::string
svcHello()
{
    Json h = Json::object();
    h.set("schema", Json::string(kSvcSchema));
    h.set("protocol", Json::number(int64_t{kSvcProtocolVersion}));
    h.set("server", Json::string("cashd"));
    h.set("version", Json::string(kCashVersion));
    return h.dump();
}

std::string
fnv1a64Hex(const std::string& data)
{
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : data) {
        h ^= c;
        h *= 1099511628211ull;
    }
    static const char* hex = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; i--) {
        out[static_cast<size_t>(i)] = hex[h & 0xF];
        h >>= 4;
    }
    return out;
}

std::string
svcCacheKey(const SvcRequest& req)
{
    const DriverRequest& d = req.driver;
    std::string key;
    key += std::string("v=") + kCashVersion + ";";
    key += "proto=" + std::to_string(kSvcProtocolVersion) + ";";
    // One canonical fragment for the whole target (opt/mem/engine/
    // fabric): TargetSpec::str() round-trips, so the CLI flags, a
    // --target spec and the service's options.target forms all
    // content-address identically.
    key += "target=" + d.target.str() + ";";
    key += "passes=" + join(d.passNames, ",") + ";";
    key += "verify=" + std::to_string(d.verify) + ";";
    key += "ordering=" + std::to_string(d.orderingChecks) + ";";
    key += "strict=" + std::to_string(d.strict) + ";";
    key += "analyze=" + std::to_string(d.analyze) + ";";
    key += "analyze_strict=" + std::to_string(d.analyzeStrict) + ";";
    key += "rules=" + join(d.analyzeRules, ",") + ";";
    key += "run=" + d.runSpec + ";";
    key += "max_events=" + std::to_string(d.maxEvents) + ";";
    key += "cfg=" + std::to_string(d.wantCfg) + ";";
    key += "graph=" + std::to_string(d.wantGraphText) + ";";
    key += "dot=" + std::to_string(d.wantDot) + ";";
    key += "source=" + d.source;
    return key;
}

std::string
svcResultBody(const SvcRequest& req, const DriverReply& rep)
{
    const std::string digest = fnv1a64Hex(svcCacheKey(req));

    StatsJsonMeta meta;
    // The cached body must not depend on the requester: label the
    // stats document with the content address, not the client's name.
    meta.file = "svc:" + digest;
    meta.run = req.driver.runSpec;
    meta.mem = req.driver.target.mem;
    meta.level = req.driver.target.level;
    if (!req.driver.target.fabric.trivial() ||
        !req.driver.target.interproc)
        meta.target = req.driver.target.str();

    Json statsDoc;
    Status st = Json::parse(
        statsJsonDocument(rep, meta, /*deterministic=*/true),
        &statsDoc);
    CASH_ASSERT(st.isOk(), "stats document must be valid JSON");

    Json body = Json::object();
    body.set("exit", Json::number(int64_t{rep.exitCode}));
    body.set("key", Json::string(digest));
    if (!rep.fatal.empty())
        body.set("fatal", Json::string(rep.fatal));
    body.set("stats", std::move(statsDoc));
    if (rep.ranAnalysis) {
        Json a = Json::object();
        a.set("errors", Json::number(rep.analysisErrors));
        a.set("warnings", Json::number(rep.analysisWarnings));
        a.set("infos", Json::number(rep.analysisInfos));
        a.set("blocked_run", Json::boolean(rep.analysisBlockedRun));
        body.set("analysis", std::move(a));
    }
    if (rep.ranSim) {
        Json s = Json::object();
        s.set("outcome",
              Json::string(simOutcomeName(rep.simOutcome)));
        s.set("return",
              Json::number(static_cast<int64_t>(rep.returnValue)));
        s.set("cycles",
              Json::number(static_cast<int64_t>(rep.cycles)));
        s.set("mem", Json::string(rep.memName));
        if (!rep.simError.empty())
            s.set("error", Json::string(rep.simError));
        if (!rep.deadlockText.empty())
            s.set("deadlock", Json::string(rep.deadlockText));
        body.set("sim", std::move(s));
    }
    if (req.driver.wantCfg)
        body.set("cfg", Json::string(rep.cfgText));
    if (req.driver.wantGraphText)
        body.set("graph", Json::string(rep.graphText));
    if (req.driver.wantDot)
        body.set("dot", Json::string(rep.dot));
    return body.dump();
}

std::string
svcResponse(const SvcRequest& req, bool cached, const std::string& body)
{
    std::string out = "{\"schema\":\"";
    out += kSvcSchema;
    out += "\",\"protocol\":";
    out += std::to_string(kSvcProtocolVersion);
    out += ",\"id\":";
    out += std::to_string(req.id);
    out += ",\"op\":\"";
    out += svcOpName(req.op);
    out += "\"";
    if (!req.label.empty()) {
        out += ",\"label\":\"";
        out += jsonEscape(req.label);
        out += "\"";
    }
    out += ",\"ok\":true,\"cached\":";
    out += cached ? "true" : "false";
    out += ",\"body\":";
    out += body;
    out += "}";
    return out;
}

std::string
svcErrorResponse(int64_t id, const std::string& op,
                 const std::string& code, const std::string& message)
{
    Json err = Json::object();
    err.set("code", Json::string(code));
    err.set("message", Json::string(message));
    Json resp = Json::object();
    resp.set("schema", Json::string(kSvcSchema));
    resp.set("protocol", Json::number(int64_t{kSvcProtocolVersion}));
    resp.set("id", Json::number(id));
    resp.set("op", Json::string(op));
    resp.set("ok", Json::boolean(false));
    resp.set("error", std::move(err));
    return resp.dump();
}

} // namespace cash
