/**
 * @file
 * Client side of the `cash-svc-v1` protocol: connect to a `cashd`
 * socket, verify the hello handshake, exchange request/response
 * frames.  Used by the `cash` CLI, the service tests and
 * bench_service_qps; embedders can use it directly to talk to a
 * long-lived compile service instead of linking the whole compiler.
 *
 * One ServiceClient owns one connection and is NOT thread-safe; use
 * one client per thread (connections are cheap — the server runs one
 * lightweight reader per connection).
 */
#ifndef CASH_SERVICE_CLIENT_H
#define CASH_SERVICE_CLIENT_H

#include <cstdint>
#include <string>

#include "service/protocol.h"
#include "support/json.h"

namespace cash {

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient&) = delete;
    ServiceClient& operator=(const ServiceClient&) = delete;

    /**
     * Connect to @p socketPath and read the hello frame.  Fails (and
     * disconnects) when the server speaks a different schema or
     * protocol version — that is the version-skew guard the
     * handshake exists for.
     */
    Status connect(const std::string& socketPath);

    /**
     * connect() with capped exponential backoff on transient
     * failures (server not yet listening: ECONNREFUSED/ENOENT, or a
     * full accept backlog).  Sleeps @p initialDelayMs before the
     * second attempt, doubling up to a 1 s cap.  Version-skew and
     * handshake failures are permanent and returned immediately —
     * retrying cannot fix an incompatible server.
     */
    Status connectWithRetry(const std::string& socketPath,
                            int attempts = 5,
                            int initialDelayMs = 50);

    /**
     * Bound every subsequent socket read/write to @p ms milliseconds
     * (SO_RCVTIMEO/SO_SNDTIMEO).  A blocked call() then fails with a
     * timeout error instead of hanging on a wedged server.  Applies
     * to the current connection and any later connect(); 0 restores
     * blocking mode.
     */
    Status setIoTimeoutMs(int64_t ms);

    void close();
    bool connected() const { return fd_ >= 0; }

    /** The server's hello (schema/protocol/version fields). */
    const Json& hello() const { return hello_; }

    /**
     * Send @p request (an "id" is assigned when absent) and block for
     * the matching response.  @p raw, when non-null, receives the
     * exact response payload bytes (byte-identity testing).  An
     * `ok:false` response is still a successful call — inspect
     * response.getBool("ok") and response.get("error").
     */
    Status call(Json request, Json* response,
                std::string* raw = nullptr);

    /** Convenience wrappers for the control ops. */
    Status ping();
    Status metrics(Json* response);
    Status shutdownServer();

  private:
    Status applyIoTimeout();

    int fd_ = -1;
    Json hello_;
    int64_t nextId_ = 1;
    int64_t ioTimeoutMs_ = 0;
    /** Last connect() failure was transient (worth retrying). */
    bool retryable_ = false;
};

/**
 * Build a compile-family request: op ∈ compile|analyze|simulate,
 * @p options as documented in docs/SERVICE.md (pass Json::object()
 * for defaults).
 */
Json makeCompileRequest(const std::string& op,
                        const std::string& source,
                        Json options = Json::object(),
                        const std::string& label = "");

} // namespace cash

#endif // CASH_SERVICE_CLIENT_H
