/**
 * @file
 * `cashd` — the persistent compile service (docs/SERVICE.md): serves
 * compile/analyze/simulate requests over a Unix-domain socket using
 * the `cash-svc-v1` protocol, with a content-addressed result cache
 * and request batching over the work-stealing pool.
 *
 * Usage:
 *   cashd [options]
 *     --socket PATH      socket path (default $CASH_SOCKET or
 *                        /tmp/cashd.sock)
 *     -j N, --jobs N     batching pool workers (default: hardware)
 *     --cache-entries N  result-cache entry cap (default 4096)
 *     --cache-mb N       result-cache size cap in MiB (default 256)
 *     --max-queue N      pending-request cap (default 4096)
 *     --stats-json FILE  write the final svc.* metrics on exit
 *     --trace FILE       write a Chrome trace (one span per request)
 *     --version          print version + protocol level and exit
 *     --verbose          debug logging to stderr
 *
 * Runs in the foreground (use your service manager to daemonize).
 * SIGTERM/SIGINT — or a client `shutdown` request — trigger a
 * graceful stop: in-flight requests finish and their responses are
 * written before the process exits 0.
 */
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "driver/driver_lib.h"
#include "service/server.h"
#include "support/trace.h"

using namespace cash;

namespace {

volatile std::sig_atomic_t gSignal = 0;

void
onSignal(int sig)
{
    gSignal = sig;
}

int
usage()
{
    std::cerr <<
        "usage: cashd [--socket PATH] [-j N] [--cache-entries N]\n"
        "             [--cache-mb N] [--max-queue N]"
        " [--stats-json FILE]\n"
        "             [--max-events-cap N] [--sim-wall-ms N]\n"
        "             [--trace FILE] [--version] [--verbose]\n";
    return 2;
}

std::string
defaultSocketPath()
{
    const char* env = std::getenv("CASH_SOCKET");
    return env && *env ? env : "/tmp/cashd.sock";
}

} // namespace

int
main(int argc, char** argv)
{
    ServiceConfig cfg;
    cfg.socketPath = defaultSocketPath();
    std::string statsJsonFile;
    std::string traceFile;

    for (int i = 1; i < argc; i++) {
        std::string arg = argv[i];
        if (arg == "--socket" && i + 1 < argc) {
            cfg.socketPath = argv[++i];
        } else if ((arg == "-j" || arg == "--jobs") && i + 1 < argc) {
            cfg.jobs = std::atoi(argv[++i]);
        } else if (arg == "--cache-entries" && i + 1 < argc) {
            cfg.cacheEntries =
                static_cast<size_t>(std::atoll(argv[++i]));
        } else if (arg == "--cache-mb" && i + 1 < argc) {
            cfg.cacheBytes =
                static_cast<size_t>(std::atoll(argv[++i])) << 20;
        } else if (arg == "--max-queue" && i + 1 < argc) {
            cfg.maxQueueDepth =
                static_cast<size_t>(std::atoll(argv[++i]));
        } else if (arg == "--max-events-cap" && i + 1 < argc) {
            cfg.maxEventsCap =
                static_cast<uint64_t>(std::atoll(argv[++i]));
        } else if (arg == "--sim-wall-ms" && i + 1 < argc) {
            cfg.simWallMs = std::atoll(argv[++i]);
        } else if (arg == "--stats-json" && i + 1 < argc) {
            statsJsonFile = argv[++i];
        } else if (arg == "--trace" && i + 1 < argc) {
            traceFile = argv[++i];
        } else if (arg == "--version") {
            std::cout << versionString("cashd") << "\n";
            return 0;
        } else if (arg == "--verbose" || arg == "-v") {
            traceLevel++;
        } else {
            return usage();
        }
    }

    TraceRecorder& tracer = globalTracer();
    if (!traceFile.empty()) {
        tracer.enable();
        cfg.tracer = &tracer;
    }

    ServiceServer server(cfg);
    Status st = server.start();
    if (!st) {
        std::cerr << "cashd: " << st.message() << "\n";
        return 1;
    }
    std::cerr << versionString("cashd") << " listening on "
              << server.socketPath() << "\n";

    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    // The signal handler can only set a flag, so poll it alongside
    // the server's own stop request (the client `shutdown` op).
    while (!gSignal && !server.waitForStopRequest(200)) {
    }
    if (gSignal)
        std::cerr << "cashd: caught signal " << gSignal
                  << ", draining\n";
    server.stop();

    StatSet m = server.metrics();
    std::cerr << "cashd: served "
              << m.get("svc.requests.total") << " request(s), "
              << m.get("svc.cache.hits") << " cache hit(s), exiting\n";

    if (!statsJsonFile.empty()) {
        std::ofstream os(statsJsonFile);
        if (!os) {
            std::cerr << "cashd: cannot write " << statsJsonFile
                      << "\n";
            return 1;
        }
        os << "{\n  \"schema\": \"cash-svc-metrics-v1\",\n"
           << "  \"server\": \"cashd\",\n"
           << "  \"version\": \"" << kCashVersion << "\",\n"
           << "  \"metrics\": " << statSetJson(m, 2) << "\n}\n";
    }
    if (!traceFile.empty()) {
        std::ofstream os(traceFile);
        if (!os) {
            std::cerr << "cashd: cannot write " << traceFile << "\n";
            return 1;
        }
        tracer.writeChromeTrace(os);
    }
    return 0;
}
