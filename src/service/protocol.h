/**
 * @file
 * The `cash-svc-v1` wire protocol (docs/SERVICE.md): length-prefixed
 * JSON frames over a Unix-domain stream socket.
 *
 * Frame format: a 4-byte big-endian payload length, then exactly that
 * many bytes of UTF-8 JSON.  The server sends one unsolicited *hello*
 * frame per connection (schema + protocol version + server version) so
 * clients can detect incompatible servers before sending anything;
 * after that the connection is strict request→response, one response
 * frame per request frame, in order.
 *
 * This header carries the three protocol layers:
 *   * **frames** — readFrame()/writeFrame() over a blocking fd, with
 *     an explicit size cap so a hostile peer cannot allocate
 *     unboundedly;
 *   * **requests** — parseSvcRequest() validates a decoded JSON
 *     request into an SvcRequest (op + DriverRequest payload),
 *     returning structured errors for anything malformed;
 *   * **responses** — deterministic response builders.  The result
 *     *body* of a compile-family response is built separately
 *     (svcResultBody) from the envelope (svcResponse) because the
 *     body is the unit the result cache stores: a cache hit replays
 *     the body bytes verbatim, so cached and uncached responses are
 *     byte-identical except for the envelope's "cached" flag.
 *
 * Nothing here does any threading or socket setup; see server.h.
 */
#ifndef CASH_SERVICE_PROTOCOL_H
#define CASH_SERVICE_PROTOCOL_H

#include <cstdint>
#include <string>

#include "driver/driver_lib.h"
#include "support/json.h"

namespace cash {

/** Wire-protocol schema tag, in every hello and response frame. */
inline constexpr const char* kSvcSchema = "cash-svc-v1";
/** Protocol revision; bumped on any incompatible wire change. */
inline constexpr int kSvcProtocolVersion = 1;
/** Default cap on a single frame's payload size (16 MiB). */
inline constexpr uint32_t kSvcMaxFrameBytes = 16u << 20;

/** Machine-readable error codes of `ok:false` responses. */
inline constexpr const char* kSvcErrBadFrame = "bad_frame";
inline constexpr const char* kSvcErrBadRequest = "bad_request";

// ---------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------

/**
 * Read one frame from blocking fd @p fd into @p payload.  Sets
 * @p cleanEof (and returns Ok with an empty payload) when the peer
 * closed the connection *between* frames; EOF inside a frame, a
 * payload longer than @p maxBytes, or a socket error produce an error
 * Status (the stream is then unsynchronized — close it).
 */
Status readFrame(int fd, std::string* payload, bool* cleanEof,
                 uint32_t maxBytes = kSvcMaxFrameBytes);

/** Write one frame (4-byte big-endian length + payload) to @p fd. */
Status writeFrame(int fd, const std::string& payload);

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/** Request operations a client may send. */
enum class SvcOp
{
    Ping,     ///< Liveness probe; responds immediately.
    Compile,  ///< Compile (and per options analyze/simulate/dump).
    Analyze,  ///< Compile + lint rules (forces options.analyze).
    Simulate, ///< Compile + run (options.run required).
    Metrics,  ///< Server-level svc.* counters snapshot.
    Shutdown, ///< Acknowledge, then gracefully stop the server.
};

/** Stable wire name of @p op ("ping", "compile", ...). */
const char* svcOpName(SvcOp op);

/** One validated client request. */
struct SvcRequest
{
    SvcOp op = SvcOp::Ping;
    /** Client-chosen correlation id, echoed in the response. */
    int64_t id = 0;
    /** Display label (e.g. the client-side file name); not cached. */
    std::string label;
    /** Compile-family payload (ops Compile/Analyze/Simulate). */
    DriverRequest driver;

    bool isCompileFamily() const
    {
        return op == SvcOp::Compile || op == SvcOp::Analyze ||
               op == SvcOp::Simulate;
    }
};

/**
 * Validate decoded request @p j into @p out.  Unknown ops, missing
 * required fields (`source` for compile-family ops, `options.run` for
 * simulate), or ill-typed options produce an error Status whose
 * message names the offending field; unknown *extra* fields are
 * ignored for forward compatibility.
 */
Status parseSvcRequest(const Json& j, SvcRequest* out);

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/** The per-connection hello frame payload. */
std::string svcHello();

/** FNV-1a 64-bit digest as 16 hex digits (the cache content address). */
std::string fnv1a64Hex(const std::string& data);

/**
 * Canonical cache-key material for a compile-family request: every
 * DriverRequest field that affects the reply (source text, level,
 * pipeline, verify/ordering/strict, analyze config, run/mem/
 * max-events, requested artifacts) plus the toolchain version.
 * Excludes `jobs`, `id` and `label`, which cannot change the result.
 */
std::string svcCacheKey(const SvcRequest& req);

/**
 * Deterministic result body of a compile-family response: exit code,
 * content digest, embedded `cash-stats-v1` document (wall-clock
 * counters stripped — see stripWallClock), sim/analysis summaries and
 * any requested artifacts.  This is the cached unit.
 */
std::string svcResultBody(const SvcRequest& req, const DriverReply& rep);

/** Envelope + body → one response frame payload. */
std::string svcResponse(const SvcRequest& req, bool cached,
                        const std::string& body);

/** An `ok:false` response frame payload. */
std::string svcErrorResponse(int64_t id, const std::string& op,
                             const std::string& code,
                             const std::string& message);

} // namespace cash

#endif // CASH_SERVICE_PROTOCOL_H
