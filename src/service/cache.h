/**
 * @file
 * Content-addressed result cache for the compile service.
 *
 * The key is the canonical request fingerprint from svcCacheKey():
 * source text plus every option that can change the reply (pipeline,
 * verify/analyze config, run/mem specs, requested artifacts) — so two
 * requests collide exactly when the driver is guaranteed to produce
 * byte-identical results for them (see driver_lib.h's determinism
 * contract).  The stored value is the serialized response *body*, so
 * a hit replays the original bytes verbatim.
 *
 * Bounded two ways (entries and total payload bytes) with LRU
 * eviction; all methods are thread-safe — the server's pool workers
 * hit it concurrently.
 */
#ifndef CASH_SERVICE_CACHE_H
#define CASH_SERVICE_CACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace cash {

class ResultCache
{
  public:
    /** @p maxEntries / @p maxBytes of 0 mean "unbounded". */
    explicit ResultCache(size_t maxEntries = 4096,
                         size_t maxBytes = 256u << 20);

    /** Monotonic counters (entries/bytes are current occupancy). */
    struct Stats
    {
        int64_t hits = 0;
        int64_t misses = 0;
        int64_t insertions = 0;
        int64_t evictions = 0;
        int64_t entries = 0;
        int64_t bytes = 0;
    };

    /**
     * Look @p key up; on a hit copies the stored body into @p body,
     * refreshes recency and counts a hit.  Counts a miss otherwise.
     */
    bool lookup(const std::string& key, std::string* body);

    /**
     * Insert (@p key → @p body), evicting least-recently-used entries
     * as needed.  Re-inserting an existing key refreshes its value
     * (concurrent misses on the same key make this reachable; both
     * workers computed identical bytes, so either value is correct).
     */
    void insert(const std::string& key, std::string body);

    /** Drop everything (occupancy resets, monotonic counters stay). */
    void clear();

    Stats stats() const;

  private:
    struct Entry
    {
        std::string key;
        std::string body;
    };

    void evictIfNeededLocked();

    const size_t maxEntries_;
    const size_t maxBytes_;

    mutable std::mutex mu_;
    /** Front = most recently used. */
    std::list<Entry> lru_;
    std::unordered_map<std::string, std::list<Entry>::iterator> index_;
    size_t bytes_ = 0;
    Stats stats_;
};

} // namespace cash

#endif // CASH_SERVICE_CACHE_H
