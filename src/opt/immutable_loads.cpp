/**
 * @file
 * Immutable-object loads (paper §4.2): accesses through pointers to
 * constants need no serialization.  If the address is itself constant
 * the load folds to the initializer value; otherwise the load is taken
 * out of the token network (constant token input, token output
 * bypassed).
 */
#include <map>

#include "opt/opt_util.h"
#include "opt/pass.h"

namespace cash {

namespace {

class ImmutableLoadsPass : public Pass
{
  public:
    const char* name() const override { return "immutable_loads"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        if (!ctx.layout)
            return false;
        tokenConst_.clear();
        for (Node* n : g.liveNodes())
            if (!n->dead && n->kind == NodeKind::Const &&
                n->type == VT::Token)
                tokenConst_[n->hyperblock] = n;
        bool changed = false;
        for (Node* n : g.liveNodes()) {
            if (n->dead || n->kind != NodeKind::Load)
                continue;
            if (!allConstLocations(n->rwSet, *ctx.layout))
                continue;
            changed |= rewrite(g, n, ctx);
        }
        return changed;
    }

  private:
    static bool
    allConstLocations(const LocationSet& s, const MemoryLayout& layout)
    {
        if (s.isTop() || s.empty())
            return false;
        for (int loc : s.locations()) {
            if (loc >= static_cast<int>(layout.objects().size()))
                return false;  // external location
            if (!layout.object(loc).isConst)
                return false;
        }
        return true;
    }

    bool
    rewrite(Graph& g, Node* n, OptContext& ctx)
    {
        const MemoryLayout& layout = *ctx.layout;

        // Statically known address → fold to the initializer value.
        const Node* addr = n->input(2).node;
        if (addr->kind == NodeKind::Const &&
            n->input(0).node->kind == NodeKind::Const &&
            n->input(0).node->constValue != 0) {
            uint32_t a = static_cast<uint32_t>(addr->constValue);
            uint32_t off = a - MemoryLayout::kGlobalBase;
            const std::vector<uint8_t>& img = layout.globalImage();
            if (off + n->size <= img.size()) {
                uint32_t v = 0;
                for (int i = 0; i < n->size; i++)
                    v |= static_cast<uint32_t>(img[off + i]) << (8 * i);
                if (n->size == 1 && n->signExtend)
                    v = static_cast<uint32_t>(static_cast<int32_t>(
                        static_cast<int8_t>(v & 0xff)));
                Node* c = g.newConst(v, VT::Word, n->hyperblock);
                g.replaceAllUses({n, 0}, {c, 0});
                g.bypassToken(n, n->input(1));
                g.erase(n);
                ctx.count("opt.immutable.folded");
                return true;
            }
        }

        // Already detached from the token network?
        if (n->input(1).node->kind == NodeKind::Const)
            return false;

        // Detach: constant token in, bypass token out.  One shared
        // token constant per hyperblock, so identical detached loads
        // become mergeable by §5.1.
        g.bypassToken(n, n->input(1));
        Node*& tok = tokenConst_[n->hyperblock];
        if (!tok || tok->dead)
            tok = g.newConst(0, VT::Token, n->hyperblock);
        g.setInput(n, 1, {tok, 0});
        ctx.count("opt.immutable.detached");
        return true;
    }

    std::map<int, Node*> tokenConst_;
};

} // namespace

void
registerImmutableLoadsPass(PassRegistry& r)
{
    r.registerPass("immutable_loads", [] {
        return std::make_unique<ImmutableLoadsPass>();
    });
}

} // namespace cash
