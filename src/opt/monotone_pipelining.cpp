/**
 * @file
 * Address-monotonicity loop pipelining (paper §6.2, Figures 13-14).
 *
 * When every access to a partition inside a loop walks a strictly
 * monotone address sequence (induction-variable analysis, after
 * Wolfe) and no two accesses can conflict across iterations, the
 * partition's token ring splits exactly like the read-only case:
 * iterations issue in pipelined fashion.
 */
#include "analysis/loop_rings.h"
#include "opt/pass.h"
#include "opt/ring_split.h"

namespace cash {

namespace {

class MonotonePipeliningPass : public Pass
{
  public:
    const char* name() const override { return "monotone_pipelining"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        bool changed = false;
        for (const HbInfo& hb : g.hyperblocks) {
            if (!hb.isLoop)
                continue;
            for (int p = 0; p < g.numPartitions; p++) {
                auto ring = findTokenRing(g, hb.id, p);
                if (!ring || ring->alreadySplit || ring->ops.empty())
                    continue;
                bool anyWrite = false;
                for (Node* op : ring->ops)
                    if (op->kind == NodeKind::Store)
                        anyWrite = true;
                if (!anyWrite)
                    continue;  // §6.1 owns the read-only case
                auto gates = ringsplit::analyzeRingDependences(g, *ring);
                // Monotone splitting requires *no* cross-iteration
                // dependence; distances are §6.3's domain.
                if (!gates || !gates->empty())
                    continue;
                ringsplit::splitRing(g, *ring, {}, ctx);
                ctx.count("opt.monotone.loops");
                changed = true;
            }
        }
        return changed;
    }
};

} // namespace

void
registerMonotonePipeliningPass(PassRegistry& r)
{
    r.registerPass("monotone_pipelining", [] {
        return std::make_unique<MonotonePipeliningPass>();
    });
}

} // namespace cash
