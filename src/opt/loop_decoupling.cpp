/**
 * @file
 * Loop decoupling (paper §6.3, Figures 15-17).
 *
 * When the accesses to a partition carry loop-borne dependences at
 * *constant* distances, the loop is vertically sliced: every access
 * issues from the generator (monotone-style pipelining), and each
 * dependent access is additionally gated by a token generator tk(d)
 * fed by the access it depends on.  The trailing access may slip at
 * most d iterations ahead; the leading one may run arbitrarily far
 * ahead (the generator stores surplus tokens in its counter).
 */
#include "analysis/loop_rings.h"
#include "opt/pass.h"
#include "opt/ring_split.h"

namespace cash {

namespace {

class LoopDecouplingPass : public Pass
{
  public:
    const char* name() const override { return "loop_decoupling"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        bool changed = false;
        for (const HbInfo& hb : g.hyperblocks) {
            if (!hb.isLoop)
                continue;
            for (int p = 0; p < g.numPartitions; p++) {
                auto ring = findTokenRing(g, hb.id, p);
                if (!ring || ring->alreadySplit || ring->ops.empty())
                    continue;
                auto gates = ringsplit::analyzeRingDependences(g, *ring);
                // This pass exists for the distance-gated case; the
                // empty-gate cases belong to §6.1/§6.2.
                if (!gates || gates->empty())
                    continue;
                ringsplit::splitRing(g, *ring, *gates, ctx);
                ctx.count("opt.loop_decoupling.loops");
                changed = true;
            }
        }
        return changed;
    }
};

} // namespace

void
registerLoopDecouplingPass(PassRegistry& r)
{
    r.registerPass("loop_decoupling", [] {
        return std::make_unique<LoopDecouplingPass>();
    });
}

} // namespace cash
