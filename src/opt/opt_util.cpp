#include "opt/opt_util.h"

#include <vector>

namespace cash {
namespace optutil {

namespace {

/** Push onto @p out the users of @p n's token outputs. */
void
tokenUsers(const Node* n, std::vector<const Node*>& out)
{
    for (const Use& u : n->uses()) {
        const Node* user = u.user;
        if (user->dead)
            continue;
        if (user->inputIsBackEdge(u.index))
            continue;  // loop-carried: not intra-activation order
        const PortRef& in = user->input(u.index);
        if (in.node != n || in.node->outputType(in.port) != VT::Token)
            continue;
        out.push_back(user);
    }
}

/** May ordering be followed *through* this node?  Combines are
 *  transparent plumbing; side-effect ops propagate order; etas,
 *  merges and token generators forward conditionally (or across
 *  iterations) and act as barriers. */
bool
traversable(const Node* n)
{
    return n->kind == NodeKind::Combine || n->kind == NodeKind::Load ||
           n->kind == NodeKind::Store || n->kind == NodeKind::Call;
}

} // namespace

bool
orderedAfter(const Node* from, const Node* to)
{
    std::vector<const Node*> work;
    tokenUsers(from, work);
    std::set<const Node*> seen;
    while (!work.empty()) {
        const Node* cur = work.back();
        work.pop_back();
        if (!seen.insert(cur).second)
            continue;
        if (cur == to)
            return true;
        if (traversable(cur))
            tokenUsers(cur, work);
    }
    return false;
}

std::vector<Node*>
directTokenConsumers(const Node* from)
{
    std::vector<Node*> out;
    std::vector<const Node*> work;
    tokenUsers(from, work);
    std::set<const Node*> seen;
    while (!work.empty()) {
        const Node* cur = work.back();
        work.pop_back();
        if (!seen.insert(cur).second)
            continue;
        if (cur->kind == NodeKind::Combine) {
            tokenUsers(cur, work);
        } else {
            out.push_back(const_cast<Node*>(cur));
        }
    }
    return out;
}

} // namespace optutil
} // namespace cash
