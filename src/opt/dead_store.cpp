/**
 * @file
 * Store-before-store removal (paper §5.2, Figure 8; step C→D of the
 * §2 example).
 *
 * When store s1's token flows directly to store s2 at the same
 * address, s1's result is overwritten: s1 needs to execute only when
 * s2 does not, so its predicate becomes p1 ∧ ¬p2.  If the boolean
 * machinery proves p1 ⇒ p2 (post-dominance), the predicate is
 * constant false and dead-code elimination removes s1 entirely.
 */
#include "analysis/boolean.h"
#include "opt/opt_util.h"
#include "opt/pass.h"
#include "pegasus/reachability.h"

namespace cash {

namespace {

class DeadStorePass : public Pass
{
  public:
    const char* name() const override { return "dead_store"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        bool changed = false;
        std::vector<Node*> stores;
        g.forEach([&](Node* n) {
            if (n->kind == NodeKind::Store)
                stores.push_back(n);
        });
        for (Node* s1 : stores) {
            if (!s1->dead)
                changed |= weaken(g, s1, ctx);
        }
        return changed;
    }

  private:
    bool
    weaken(Graph& g, Node* s1, OptContext& ctx)
    {
        if (isFalsePred(s1->input(0)))
            return false;  // already dead; §4.1 cleans it up
        for (Node* s2 : optutil::directTokenConsumers(s1)) {
            if (s2->kind != NodeKind::Store)
                continue;
            if (!(s2->input(2) == s1->input(2)) || s2->size != s1->size)
                continue;

            PortRef p1 = s1->input(0);
            PortRef p2 = s2->input(0);
            // Idempotence: p1 already conjoins ¬p2.
            if (alreadyWeakened(p1, p2))
                continue;

            // Cycle guard: p2 must not derive from s1's token.
            ReachabilityCache reach(g);
            if (reach.reaches(s1, p2.node))
                continue;

            if (predImplies(p1, p2)) {
                // s2 post-dominates s1: s1 is dead (Figure 1 C→D).
                g.setInput(s1, 0,
                           {g.newConst(0, VT::Pred, s1->hyperblock), 0});
                ctx.count("opt.dead_store.removed");
            } else {
                Node* notP2 = g.newArith1(Op::NotBool, p2,
                                          s1->hyperblock, VT::Pred);
                Node* andP = g.newArith(Op::And, p1, {notP2, 0},
                                        s1->hyperblock, VT::Pred);
                g.setInput(s1, 0, {andP, 0});
                ctx.count("opt.dead_store.weakened");
            }
            return true;
        }
        return false;
    }

    /** Is p1 of the shape ... ∧ ¬p2 already? */
    bool
    alreadyWeakened(PortRef p1, PortRef p2) const
    {
        if (p1.node->kind != NodeKind::Arith || p1.node->op != Op::And)
            return false;
        for (int i = 0; i < 2; i++) {
            PortRef in = p1.node->input(i);
            if (in.node->kind == NodeKind::Arith &&
                in.node->op == Op::NotBool && in.node->input(0) == p2)
                return true;
        }
        return false;
    }
};

} // namespace

void
registerDeadStorePass(PassRegistry& r)
{
    r.registerPass("dead_store", [] {
        return std::make_unique<DeadStorePass>();
    });
}

} // namespace cash
