/**
 * @file
 * Shared helpers for optimization passes: token-plumbing utilities
 * used by transitive reduction, token removal and the redundancy
 * eliminations.
 */
#ifndef CASH_OPT_OPT_UTIL_H
#define CASH_OPT_OPT_UTIL_H

#include <set>
#include <vector>

#include "pegasus/graph.h"

namespace cash {
namespace optutil {

/** Is @p n a node whose token output orders later operations? */
inline bool
isTokenProducer(const Node* n)
{
    return n->tokenOutPort() >= 0;
}

/**
 * Expand a token input through Combine chains into its ultimate
 * sources (side-effect nodes, ring merges, token etas, generators).
 */
inline std::vector<PortRef>
expandTokenSources(PortRef in)
{
    std::vector<PortRef> out;
    std::vector<PortRef> work{in};
    std::set<const Node*> seen;
    while (!work.empty()) {
        PortRef cur = work.back();
        work.pop_back();
        if (!cur.valid())
            continue;
        if (cur.node->kind == NodeKind::Combine) {
            if (!seen.insert(cur.node).second)
                continue;
            for (const PortRef& i : cur.node->inputs())
                work.push_back(i);
        } else {
            bool dup = false;
            for (const PortRef& o : out)
                if (o == cur)
                    dup = true;
            if (!dup)
                out.push_back(cur);
        }
    }
    return out;
}

/**
 * Wire @p consumerInput of @p consumer to the given token sources,
 * creating a Combine when more than one (in @p consumer's hyperblock).
 */
inline void
setTokenInput(Graph& g, Node* consumer, int consumerInput,
              const std::vector<PortRef>& sources)
{
    CASH_ASSERT(!sources.empty(), "token input with no sources");
    if (sources.size() == 1) {
        g.setInput(consumer, consumerInput, sources[0]);
        return;
    }
    Node* c = g.newNode(NodeKind::Combine, VT::Token,
                        consumer->hyperblock);
    for (const PortRef& s : sources)
        g.addInput(c, s);
    g.setInput(consumer, consumerInput, {c, 0});
}

/**
 * "Must execute after" reachability in the token graph, staying inside
 * unconditional intra-hyperblock token flow: traverses Combine nodes
 * and side-effect nodes but stops at etas, merges and token
 * generators (their forwarding is conditional or cross-iteration).
 *
 * Returns true when @p to is transitively ordered after @p from.
 */
bool orderedAfter(const Node* from, const Node* to);

/**
 * All side-effect/eta/tokengen consumers ordered directly after
 * @p from's token output (through combines).
 */
std::vector<Node*> directTokenConsumers(const Node* from);

/**
 * The input slot of @p n that carries ordering tokens (eta/merge token
 * rings use slot 0), or -1 when @p n consumes no tokens.
 */
inline int
tokenConsumerInput(const Node* n)
{
    switch (n->kind) {
      case NodeKind::Load:
      case NodeKind::Store:
      case NodeKind::Call:
      case NodeKind::Return:
      case NodeKind::TokenGen:
        return n->tokenInIndex();
      case NodeKind::Eta:
      case NodeKind::Merge:
        return n->type == VT::Token ? 0 : -1;
      default:
        return -1;
    }
}

/** Append @p src to the token sources of @p consumer (deduplicated). */
inline void
addTokenSource(Graph& g, Node* consumer, PortRef src)
{
    int idx = tokenConsumerInput(consumer);
    if (idx < 0)
        return;
    std::vector<PortRef> srcs = expandTokenSources(consumer->input(idx));
    for (const PortRef& s : srcs)
        if (s == src)
            return;
    srcs.push_back(src);
    setTokenInput(g, consumer, idx, srcs);
}

} // namespace optutil
} // namespace cash

#endif // CASH_OPT_OPT_UTIL_H
