/**
 * @file
 * Shared machinery for the §6 loop-pipelining transformations.
 *
 * All three passes (read-only splitting §6.1, address-monotonicity
 * §6.2, loop decoupling §6.3) rewrite a partition's token ring into
 * the generator/collector shape:
 *
 *  - the ring merge becomes a *generator*: its back eta recirculates
 *    the merge output directly, so iteration i+1's operations no
 *    longer wait for iteration i's to complete;
 *  - a *collector* ring gathers every iteration's dangling tokens so
 *    the loop's exit etas (and everything after the loop) still wait
 *    for all outstanding accesses;
 *  - decoupling additionally gates some operations with token
 *    generators tk(d) fed by the operation they depend on at
 *    dependence distance d, bounding the slip (Figure 16).
 */
#ifndef CASH_OPT_RING_SPLIT_H
#define CASH_OPT_RING_SPLIT_H

#include <optional>
#include <vector>

#include "analysis/loop_rings.h"
#include "opt/pass.h"
#include "pegasus/graph.h"

namespace cash {
namespace ringsplit {

/** One slip bound: @p follower may run at most @p distance iterations
 *  ahead of @p leader. */
struct Gate
{
    Node* follower = nullptr;
    Node* leader = nullptr;
    int64_t distance = 0;
};

/**
 * Cross-iteration dependence analysis over a ring's operations.
 * Returns the required gates, or nullopt when the ring cannot be
 * safely pipelined (unknown strides, mismatched steps, distances that
 * are not compile-time constants, within-stride overlap).  An empty
 * gate list means full splitting is safe (the §6.2 monotone case).
 */
std::optional<std::vector<Gate>> analyzeRingDependences(Graph& g,
                                                        TokenRing& ring);

/**
 * Apply the generator/collector rewrite with the given gates.
 * The ring must come fresh from findTokenRing with !alreadySplit.
 */
void splitRing(Graph& g, TokenRing& ring, const std::vector<Gate>& gates,
               OptContext& ctx);

} // namespace ringsplit
} // namespace cash

#endif // CASH_OPT_RING_SPLIT_H
