/**
 * @file
 * Optimization pass framework for Pegasus graphs.
 *
 * Passes are local graph rewriters (term rewriting, §2): each returns
 * whether it changed the graph, and the manager iterates the pipeline
 * to a fixed point.  Optimization levels match the paper's Figure 19
 * configurations.
 */
#ifndef CASH_OPT_PASS_H
#define CASH_OPT_PASS_H

#include <memory>
#include <string>
#include <vector>

#include "analysis/memloc.h"
#include "frontend/layout.h"
#include "pegasus/graph.h"
#include "support/stats.h"
#include "support/trace.h"

namespace cash {

/** Shared state available to every pass. */
struct OptContext
{
    const AliasOracle* oracle = nullptr;
    const MemoryLayout* layout = nullptr;
    StatSet* stats = nullptr;
    /** Observability sink for per-pass spans (may be disabled). */
    TraceRecorder* tracer = nullptr;
    bool verifyAfterEachPass = false;

    void
    count(const std::string& name, int64_t delta = 1) const
    {
        if (stats)
            stats->add(name, delta);
    }
};

/** Base class of all Pegasus optimization passes. */
class Pass
{
  public:
    virtual ~Pass() = default;
    virtual const char* name() const = 0;
    /** Returns true when the graph changed. */
    virtual bool run(Graph& g, OptContext& ctx) = 0;
};

/** Optimization levels (Figure 19 configurations). */
enum class OptLevel
{
    /** Coarse token graph, scalar cleanup only. */
    None,
    /**
     * Pointer analysis during construction, token-edge removal by
     * address disambiguation, transitive reduction, immutable loads
     * and induction-variable loop pipelining ("Medium").
     */
    Medium,
    /** Medium + redundancy elimination (§5) + read-only splitting and
     *  loop decoupling (§6). */
    Full,
};

const char* optLevelName(OptLevel level);

/** Size of a Pegasus graph, as reported in per-pass IR deltas. */
struct IrShape
{
    int64_t nodes = 0;       ///< Live nodes.
    int64_t edges = 0;       ///< Inputs over all live nodes.
    int64_t tokenEdges = 0;  ///< Edges carrying a VT::Token value.
};

IrShape measureIr(const Graph& g);

// Factory functions, one per paper optimization.
std::unique_ptr<Pass> makeScalarOpts();           // folding, CSE
std::unique_ptr<Pass> makeDeadCode();             // §4.1
std::unique_ptr<Pass> makeTransitiveReduction();  // §3.4
std::unique_ptr<Pass> makeTokenRemoval();         // §4.3
std::unique_ptr<Pass> makeImmutableLoads();       // §4.2
std::unique_ptr<Pass> makeMemoryMerge();          // §5.1
std::unique_ptr<Pass> makeStoreForwarding();      // §5.3
std::unique_ptr<Pass> makeDeadStore();            // §5.2
std::unique_ptr<Pass> makeLoopInvariant();        // §5.4
std::unique_ptr<Pass> makeReadonlySplit();        // §6.1
std::unique_ptr<Pass> makeMonotonePipelining();   // §6.2
std::unique_ptr<Pass> makeLoopDecoupling();       // §6.3

/** The pass pipeline for @p level. */
std::vector<std::unique_ptr<Pass>> standardPipeline(OptLevel level);

/**
 * Run the pipeline over @p g until a fixed point (bounded rounds).
 * Returns the number of rounds executed.
 */
int optimizeGraph(Graph& g, OptLevel level, OptContext& ctx);

} // namespace cash

#endif // CASH_OPT_PASS_H
