/**
 * @file
 * Optimization pass framework for Pegasus graphs.
 *
 * Passes are local graph rewriters (term rewriting, §2): each returns
 * whether it changed the graph, and the manager iterates the pipeline
 * to a fixed point.  Optimization levels match the paper's Figure 19
 * configurations.
 *
 * Passes are published through the name-keyed PassRegistry rather
 * than per-pass factory functions: pipelines are *specs* — ordered
 * lists of pass names — instantiated with createPipeline().  This is
 * what `cashc --passes=a,b,c` and embedders scripting their own
 * schedules go through; `standardPipelineNames()` exposes the paper's
 * Figure-19 schedules in the same currency.
 */
#ifndef CASH_OPT_PASS_H
#define CASH_OPT_PASS_H

#include <functional>
#include <memory>
#include <mutex>
#include <map>
#include <string>
#include <vector>

#include "analysis/memloc.h"
#include "frontend/layout.h"
#include "pegasus/graph.h"
#include "support/fault_injection.h"
#include "support/stats.h"
#include "support/trace.h"

namespace cash {

class InterprocModel;

/**
 * Structured diagnostic for one failed pass run: the pass either threw
 * (ErrorCode::PassError) or left the graph in a state the verifier
 * rejects (ErrorCode::VerifyError).  With isolation enabled the graph
 * was rolled back to its pre-pass snapshot and the pass quarantined
 * for this function; compilation of everything else continued.
 */
struct PassFailure
{
    std::string function;
    std::string pass;
    int round = 0;
    ErrorCode code = ErrorCode::Ok;
    std::string message;

    /** One-line rendering for logs / cashc stderr. */
    std::string str() const;
};

/**
 * Per-worker state available to every pass.
 *
 * One OptContext belongs to exactly one optimization worker (one
 * function being optimized); it must never be shared between
 * concurrently running workers.  The analysis inputs (`oracle`,
 * `layout`) are immutable and safely shared by all workers; the
 * output sinks (`stats`, `tracer`) are exclusively owned by this
 * worker and merged by the driver in deterministic order afterwards
 * (see compileSource()).
 */
struct OptContext
{
    /** Shared, immutable: pairwise may-alias facts (read-only). */
    const AliasOracle* oracle = nullptr;
    /** Shared, immutable: the program's memory layout (read-only). */
    const MemoryLayout* layout = nullptr;
    /** Worker-owned counter sink. */
    StatSet* stats = nullptr;
    /** Worker-owned observability sink (may be disabled). */
    TraceRecorder* tracer = nullptr;
    bool verifyAfterEachPass = false;
    /**
     * Run the independent memory-ordering soundness checker
     * (analysis/ordering_checker.h) after every pass, in addition to
     * the structural verifier.  An error-severity finding is treated
     * exactly like a verifier rejection: rollback + quarantine under
     * isolation (ErrorCode::AnalysisError), fatal in strict mode.
     */
    bool checkOrdering = false;
    /**
     * Shared, immutable: interprocedural effect model for the
     * ordering checker (analysis/interproc.h).  When set, per-pass
     * checks resolve call effects per call site instead of Top — the
     * mode that keeps `interproc_token_pruning` honest under
     * --verify-each-pass.  Null = calls stay conservative.
     */
    const InterprocModel* interproc = nullptr;
    /**
     * Fault isolation: snapshot the graph before each pass; on a pass
     * throwing or failing verification, roll back to the snapshot,
     * quarantine that pass for this function, record a PassFailure and
     * keep going.  When off (strict mode), the same failures raise a
     * FatalError instead.
     */
    bool isolatePasses = false;
    /** Worker-owned failure sink (may be null: failures not recorded). */
    std::vector<PassFailure>* failures = nullptr;
    /** Shared, immutable: fault-injection plan (null = no faults). */
    const FaultPlan* faults = nullptr;

    void
    count(const std::string& name, int64_t delta = 1) const
    {
        if (stats)
            stats->add(name, delta);
    }
};

/** Base class of all Pegasus optimization passes. */
class Pass
{
  public:
    virtual ~Pass() = default;
    virtual const char* name() const = 0;
    /** Returns true when the graph changed. */
    virtual bool run(Graph& g, OptContext& ctx) = 0;
};

/** Optimization levels (Figure 19 configurations). */
enum class OptLevel
{
    /** Coarse token graph, scalar cleanup only. */
    None,
    /**
     * Pointer analysis during construction, token-edge removal by
     * address disambiguation, transitive reduction, immutable loads
     * and induction-variable loop pipelining ("Medium").
     */
    Medium,
    /** Medium + redundancy elimination (§5) + read-only splitting and
     *  loop decoupling (§6). */
    Full,
};

const char* optLevelName(OptLevel level);

/** Size of a Pegasus graph, as reported in per-pass IR deltas. */
struct IrShape
{
    int64_t nodes = 0;       ///< Live nodes.
    int64_t edges = 0;       ///< Inputs over all live nodes.
    int64_t tokenEdges = 0;  ///< Edges carrying a VT::Token value.

    bool
    operator==(const IrShape& o) const
    {
        return nodes == o.nodes && edges == o.edges &&
               tokenEdges == o.tokenEdges;
    }
};

IrShape measureIr(const Graph& g);

/**
 * Name-keyed registry of pass factories.
 *
 * The twelve paper passes are pre-registered in global() under their
 * `Pass::name()` strings ("scalar_opts", "token_removal", ...);
 * lookups treat '-' and '_' interchangeably, so the CLI spelling
 * `--passes=token-removal` resolves too.  Embedders may register
 * additional passes (or shadow a built-in) at runtime.
 *
 * All methods are thread-safe: parallel compilation workers
 * instantiate their pipelines from the shared registry concurrently.
 */
class PassRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Pass>()>;

    /** The process-wide registry, pre-loaded with the built-ins. */
    static PassRegistry& global();

    /** Register (or replace) the factory for @p name. */
    void registerPass(const std::string& name, Factory factory);

    bool has(const std::string& name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

    /** Instantiate the pass @p name; fatal() on unknown names. */
    std::unique_ptr<Pass> create(const std::string& name) const;

    /** Instantiate a pipeline spec in order; fatal() on unknown names. */
    std::vector<std::unique_ptr<Pass>> createPipeline(
        const std::vector<std::string>& names) const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, Factory> factories_;
};

/** The pass-name sequence of the standard pipeline for @p level. */
std::vector<std::string> standardPipelineNames(OptLevel level);

/** The instantiated standard pipeline for @p level. */
std::vector<std::unique_ptr<Pass>> standardPipeline(OptLevel level);

/**
 * Run @p passes over @p g until a fixed point (bounded rounds).
 * Returns the number of rounds executed.
 */
int optimizeGraph(Graph& g,
                  const std::vector<std::unique_ptr<Pass>>& passes,
                  OptContext& ctx);

/** Convenience: optimizeGraph with the standard pipeline of @p level. */
int optimizeGraph(Graph& g, OptLevel level, OptContext& ctx);

} // namespace cash

#endif // CASH_OPT_PASS_H
