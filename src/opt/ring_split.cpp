#include "opt/ring_split.h"

#include <cstdlib>

#include "analysis/induction.h"
#include "analysis/symbolic.h"
#include "opt/opt_util.h"

namespace cash {
namespace ringsplit {

std::optional<std::vector<Gate>>
analyzeRingDependences(Graph& g, TokenRing& ring)
{
    InductionAnalysis ivs(g);
    SymbolicAddress sym(&ivs);
    int hb = ring.hyperblock;

    struct OpExpr
    {
        Node* op;
        AffineExpr base;  ///< Address with the ITER term removed.
        int64_t step;
    };
    std::vector<OpExpr> exprs;
    for (Node* op : ring.ops) {
        AffineExpr e = sym.expr(op->input(2));
        if (!e.valid)
            return std::nullopt;
        int64_t s = e.iterCoeff(hb);
        if (s == 0)
            return std::nullopt;  // address not strictly monotone
        if (std::abs(s) < op->size)
            return std::nullopt;  // consecutive iterations overlap
        exprs.push_back({op, e.withoutIter(hb), s});
    }

    std::vector<Gate> gates;
    for (size_t i = 0; i < exprs.size(); i++) {
        for (size_t j = i + 1; j < exprs.size(); j++) {
            Node* x = exprs[i].op;
            Node* y = exprs[j].op;
            if (x->kind == NodeKind::Load && y->kind == NodeKind::Load)
                continue;  // reads commute
            if (exprs[i].step != exprs[j].step)
                return std::nullopt;
            int64_t s = exprs[i].step;
            AffineExpr diff = exprs[i].base.minus(exprs[j].base);
            int64_t c;
            if (!diff.isConstant(&c))
                return std::nullopt;
            // addrX(k) == addrY(m)  ⇔  c == s·(m−k); byte overlap can
            // only happen near that alignment because |s| ≥ both sizes.
            int64_t S = std::abs(s);
            if (c % S != 0) {
                // Never the same address at any iteration pair; check
                // residual byte overlap of the wider access.
                int64_t r = ((c % S) + S) % S;
                int64_t z = std::max(x->size, y->size);
                if (r < z || S - r < z)
                    return std::nullopt;
                continue;
            }
            int64_t d = c / s;
            if (d == 0) {
                // Same address each iteration: the intra-iteration
                // token edge must already order the pair.
                bool ordered =
                    optutil::orderedAfter(x, y) ||
                    optutil::orderedAfter(y, x);
                if (!ordered)
                    return std::nullopt;
                continue;
            }
            // X@k conflicts with Y@(k+d): for d>0 Y trails X; the
            // trailing op may slip at most |d| iterations ahead.
            if (d > 0)
                gates.push_back({y, x, d});
            else
                gates.push_back({x, y, -d});
        }
    }
    return gates;
}

void
splitRing(Graph& g, TokenRing& ring, const std::vector<Gate>& gates,
          OptContext& ctx)
{
    CASH_ASSERT(!ring.alreadySplit, "splitting a split ring");
    int hb = ring.hyperblock;
    Node* merge = ring.merge;

    // 1. Generator: the merge's back input recirculates the merge
    //    itself, gated by the loop-continuation predicate.
    Node* genEta = g.newNode(NodeKind::Eta, VT::Token, hb);
    g.addInput(genEta, {merge, 0});
    g.addInput(genEta, ring.backPred);
    for (int i = 0; i < merge->numInputs(); i++) {
        if (i != merge->deciderIndex && merge->inputIsBackEdge(i)) {
            g.setInput(merge, i, {genEta, 0});
            break;
        }
    }

    // 2. Collector ring (a mu-merge: decider = the loop predicate).
    Node* collector = g.newNode(NodeKind::Merge, VT::Token, hb);
    for (const PortRef& init : ring.initialInputs)
        g.addInput(collector, init);
    Node* state = g.newNode(NodeKind::Combine, VT::Token, hb);
    g.addInput(state, {collector, 0});
    for (Node* op : ring.danglingOps)
        g.addInput(state, {op, op->tokenOutPort()});
    Node* colEta = g.newNode(NodeKind::Eta, VT::Token, hb);
    g.addInput(colEta, {state, 0});
    g.addInput(colEta, ring.backPred);
    g.addInput(collector, {colEta, 0}, /*backEdge=*/true);
    collector->deciderIndex = collector->numInputs();
    g.addInput(collector, ring.backPred, /*backEdge=*/true);

    // 3. Exit etas deliver the collected state.
    for (Node* eta : ring.exitEtas)
        g.setInput(eta, 0, {state, 0});

    // 4. The old back eta is obsolete.
    CASH_ASSERT(ring.backEta->uses().empty(),
                "old back eta still in use");
    g.erase(ring.backEta);

    // 5. Slip-bounding token generators (§6.3).
    for (const Gate& gate : gates) {
        Node* tk = g.newNode(NodeKind::TokenGen, VT::Token, hb);
        tk->tkCount = static_cast<int>(gate.distance);
        g.addInput(tk, ring.backPred);
        // Loop-carried: the generator's initial credits are what break
        // the static cycle follower → leader → tk → follower.
        g.addInput(tk, {gate.leader, gate.leader->tokenOutPort()},
                   /*backEdge=*/true);
        optutil::addTokenSource(g, gate.follower, {tk, 0});
        ctx.count("opt.ring_split.tokengens");
    }
    ctx.count("opt.ring_split.rings");
}

} // namespace ringsplit
} // namespace cash
