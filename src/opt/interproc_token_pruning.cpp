/**
 * @file
 * Cross-call token-edge pruning from whole-program MOD/REF summaries.
 *
 * The builder threads every call through every token ring: without
 * interprocedural knowledge a call must be assumed to read and write
 * anything, so all memory traffic serializes at call boundaries.  The
 * MOD/REF analysis (analysis/modref.h) stamps each call node with the
 * locations the callee — transitively — may actually touch, resolved
 * through the caller's points-to bindings for the arguments.  This
 * pass removes every direct token edge between two side effects, at
 * least one of them a call, whose resolved effect sets are pairwise
 * disjoint under the alias oracle: no write–read, read–write or
 * write–write overlap means no ordering requirement.
 *
 * Edge removal preserves the transitive closure (same splice as
 * token_removal, Figure 5): the consumer inherits the producer's token
 * sources, and the consumer's own token consumers gain a direct edge
 * from the producer, so third parties ordered through the removed
 * edge stay ordered.  The later transitive_reduction rounds clean up
 * any redundancy the splice introduces.
 *
 * Every decision this pass makes is re-proved by the independent
 * interprocedural checker (analysis/interproc.h) under
 * `cashc --analyze` / --verify-each-pass.
 */
#include "opt/opt_util.h"
#include "opt/pass.h"

namespace cash {

namespace {

class InterprocTokenPruningPass : public Pass
{
  public:
    const char* name() const override
    {
        return "interproc_token_pruning";
    }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        if (!ctx.oracle)
            return false;
        bool changed = false;
        for (Node* n : g.liveNodes()) {
            if (n->dead || !sideEffectWithKnownEffects(n))
                continue;
            changed |= tryPruneIncoming(g, n, ctx);
        }
        return changed;
    }

  private:
    /** Load/Store/Call with bounded effect sets (never Return). */
    static bool
    sideEffectWithKnownEffects(const Node* n)
    {
        switch (n->kind) {
          case NodeKind::Load:
          case NodeKind::Store:
            return !n->rwSet.isTop();
          case NodeKind::Call:
            return n->callEffectsValid && !n->callReads.isTop() &&
                   !n->callWrites.isTop();
          default:
            return false;
        }
    }

    static void
    effects(const Node* n, LocationSet* reads, LocationSet* writes)
    {
        switch (n->kind) {
          case NodeKind::Load:
            *reads = n->rwSet;
            break;
          case NodeKind::Store:
            *writes = n->rwSet;
            break;
          case NodeKind::Call:
            *reads = n->callReads;
            *writes = n->callWrites;
            break;
          default:
            break;
        }
    }

    bool
    disjoint(const Node* a, const Node* b, OptContext& ctx) const
    {
        LocationSet ra, wa, rb, wb;
        effects(a, &ra, &wa);
        effects(b, &rb, &wb);
        return !ctx.oracle->mayOverlap(wa, rb) &&
               !ctx.oracle->mayOverlap(wb, ra) &&
               !ctx.oracle->mayOverlap(wa, wb);
    }

    bool
    tryPruneIncoming(Graph& g, Node* n, OptContext& ctx)
    {
        int ti = n->tokenInIndex();
        if (ti < 0 || ti >= n->numInputs() || !n->input(ti).valid())
            return false;
        std::vector<PortRef> srcs =
            optutil::expandTokenSources(n->input(ti));

        for (const PortRef& s : srcs) {
            Node* j = s.node;
            // Intraprocedural pairs belong to token_removal; this
            // pass only touches edges with a call endpoint.
            if (n->kind != NodeKind::Call && j->kind != NodeKind::Call)
                continue;
            if (!sideEffectWithKnownEffects(j))
                continue;
            if (!disjoint(n, j, ctx))
                continue;

            // Remove edge j → n, preserving the transitive closure:
            // n inherits j's sources ...
            std::vector<PortRef> newSrcs;
            for (const PortRef& o : srcs)
                if (!(o == s))
                    newSrcs.push_back(o);
            for (const PortRef& inh : optutil::expandTokenSources(
                     j->input(j->tokenInIndex()))) {
                bool dup = false;
                for (const PortRef& o : newSrcs)
                    if (o == inh)
                        dup = true;
                if (!dup)
                    newSrcs.push_back(inh);
            }
            CASH_ASSERT(!newSrcs.empty(),
                        "interproc pruning left op with no ordering"
                        " source");

            // ... and n's token consumers stay ordered after j.
            int jPort = j->tokenOutPort();
            for (Node* c : optutil::directTokenConsumers(n))
                optutil::addTokenSource(g, c, {j, jPort});

            optutil::setTokenInput(g, n, ti, newSrcs);
            ctx.count("opt.interproc_token_pruning.pruned_edges");
            return true;
        }
        return false;
    }
};

} // namespace

void
registerInterprocTokenPruningPass(PassRegistry& r)
{
    r.registerPass("interproc_token_pruning", [] {
        return std::make_unique<InterprocTokenPruningPass>();
    });
}

} // namespace cash
