/**
 * @file
 * Dead-code elimination, including predicated-false memory operations
 * (paper §4.1) and structural simplification of muxes, merges, etas
 * and combines.
 */
#include <vector>

#include "opt/opt_util.h"
#include "opt/pass.h"
#include "support/diagnostics.h"

namespace cash {

namespace {

bool
isConstVal(const PortRef& p, int64_t v)
{
    return p.node->kind == NodeKind::Const && p.node->constValue == v;
}

bool
isConstFalse(const PortRef& p)
{
    return isConstVal(p, 0);
}

bool
isConstTrue(const PortRef& p)
{
    return p.node->kind == NodeKind::Const && p.node->constValue != 0;
}

class DeadCodePass : public Pass
{
  public:
    const char* name() const override { return "dead_code"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        bool anyChange = false;
        bool changed = true;
        int guard = 0;
        while (changed && guard++ < 64) {
            changed = false;
            for (Node* n : g.liveNodes()) {
                if (n->dead)
                    continue;
                changed |= simplify(g, n, ctx);
            }
            anyChange |= changed;
        }
        return anyChange;
    }

  private:
    bool
    simplify(Graph& g, Node* n, OptContext& ctx)
    {
        switch (n->kind) {
          case NodeKind::Arith:
          case NodeKind::Mux:
            if (n->uses().empty()) {
                g.erase(n);
                ctx.count("opt.dead_code.pure");
                return true;
            }
            if (n->kind == NodeKind::Mux)
                return simplifyMux(g, n, ctx);
            return false;

          case NodeKind::Const:
            if (n->uses().empty()) {
                g.erase(n);
                return true;
            }
            return false;

          case NodeKind::Combine:
            return simplifyCombine(g, n, ctx);

          case NodeKind::Merge:
            return simplifyMerge(g, n, ctx);

          case NodeKind::Eta:
            return simplifyEta(g, n, ctx);

          case NodeKind::Load:
            // §4.1: false predicate → the op never runs; its token
            // flows straight through.  A load whose value is unused is
            // equally dead.
            if (isConstFalse(n->input(0)) || dataUnused(n)) {
                bool predFalse = isConstFalse(n->input(0));
                Node* zero = g.newConst(0, VT::Word, n->hyperblock);
                g.replaceAllUses({n, 0}, {zero, 0});
                g.bypassToken(n, n->input(1));
                g.erase(n);
                if (zero->uses().empty())
                    g.erase(zero);
                ctx.count(predFalse ? "opt.dead_code.falseLoad"
                                    : "opt.dead_code.unusedLoad");
                return true;
            }
            return false;

          case NodeKind::Store:
            if (isConstFalse(n->input(0))) {
                g.bypassToken(n, n->input(1));
                g.erase(n);
                ctx.count("opt.dead_code.falseStore");
                return true;
            }
            return false;

          case NodeKind::Call:
            if (isConstFalse(n->input(0))) {
                Node* zero = g.newConst(0, VT::Word, n->hyperblock);
                g.replaceAllUses({n, 0}, {zero, 0});
                g.bypassToken(n, n->input(1));
                g.erase(n);
                if (zero->uses().empty())
                    g.erase(zero);
                ctx.count("opt.dead_code.falseCall");
                return true;
            }
            return false;

          default:
            return false;
        }
    }

    bool
    dataUnused(const Node* n) const
    {
        for (const Use& u : n->uses())
            if (u.user->input(u.index) == PortRef{const_cast<Node*>(n), 0})
                return false;
        return true;
    }

    bool
    simplifyMux(Graph& g, Node* n, OptContext& ctx)
    {
        // Drop arms with constant-false predicates.
        for (int i = 0; i < n->numInputs(); i += 2) {
            if (isConstFalse(n->input(i))) {
                g.removeInput(n, i + 1);
                g.removeInput(n, i);
                ctx.count("opt.dead_code.muxArm");
                return true;
            }
        }
        // A constant-true arm dominates (predicates are one-hot).
        for (int i = 0; i < n->numInputs(); i += 2) {
            if (isConstTrue(n->input(i))) {
                PortRef v = n->input(i + 1);
                g.replaceAllUses({n, 0}, v);
                g.erase(n);
                ctx.count("opt.dead_code.muxConst");
                return true;
            }
        }
        if (n->numInputs() == 2) {
            PortRef v = n->input(1);
            g.replaceAllUses({n, 0}, v);
            g.erase(n);
            ctx.count("opt.dead_code.muxSingle");
            return true;
        }
        // All arms carry the same value.
        bool allSame = n->numInputs() >= 2;
        for (int i = 3; i < n->numInputs(); i += 2)
            if (n->input(i) != n->input(1))
                allSame = false;
        if (allSame && n->numInputs() > 2) {
            PortRef v = n->input(1);
            g.replaceAllUses({n, 0}, v);
            g.erase(n);
            ctx.count("opt.dead_code.muxUniform");
            return true;
        }
        return false;
    }

    bool
    simplifyCombine(Graph& g, Node* n, OptContext& ctx)
    {
        if (n->uses().empty()) {
            g.erase(n);
            return true;
        }
        // Dedupe inputs.
        for (int i = 0; i < n->numInputs(); i++) {
            for (int j = i + 1; j < n->numInputs(); j++) {
                if (n->input(i) == n->input(j)) {
                    g.removeInput(n, j);
                    ctx.count("opt.dead_code.combineDup");
                    return true;
                }
            }
        }
        if (n->numInputs() == 1) {
            g.replaceAllUses({n, 0}, n->input(0));
            g.erase(n);
            ctx.count("opt.dead_code.combineSingle");
            return true;
        }
        return false;
    }

    bool
    simplifyMerge(Graph& g, Node* n, OptContext& ctx)
    {
        if (n->uses().empty()) {
            g.erase(n);
            ctx.count("opt.dead_code.merge");
            return true;
        }
        // A mu-merge whose back inputs all vanished degenerates to a
        // plain merge; drop the now-meaningless decider.
        if (n->deciderIndex >= 0) {
            bool hasBack = false;
            for (int i = 0; i < n->numInputs(); i++)
                if (i != n->deciderIndex && n->inputIsBackEdge(i))
                    hasBack = true;
            if (!hasBack) {
                g.removeDecider(n);
                ctx.count("opt.dead_code.decider");
                return true;
            }
        }
        if (n->numInputs() == 1 && !n->inputIsBackEdge(0) &&
            n->input(0).node->kind != NodeKind::Eta) {
            // Eta-fed merges stay: they filter the end-of-stream
            // markers etas emit on not-taken activations.
            g.replaceAllUses({n, 0}, n->input(0));
            g.erase(n);
            ctx.count("opt.dead_code.mergeSingle");
            return true;
        }
        if (n->numInputs() == 0) {
            // The hyperblock is unreachable; constants let downstream
            // predicates fold to false.
            Node* zero = g.newConst(0, n->type, n->hyperblock);
            g.replaceAllUses({n, 0}, {zero, 0});
            g.erase(n);
            ctx.count("opt.dead_code.mergeEmpty");
            return true;
        }
        return false;
    }

    bool
    simplifyEta(Graph& g, Node* n, OptContext& ctx)
    {
        if (n->uses().empty()) {
            g.erase(n);
            ctx.count("opt.dead_code.eta");
            return true;
        }
        if (isConstFalse(n->input(1))) {
            // Never fires: remove the merge input slots it feeds.
            std::vector<Use> uses(n->uses().begin(), n->uses().end());
            for (const Use& u : uses) {
                CASH_ASSERT(u.user->kind == NodeKind::Merge,
                            "token/value eta feeding non-merge");
                g.removeInput(u.user, u.index);
            }
            g.erase(n);
            ctx.count("opt.dead_code.etaFalse");
            return true;
        }
        if (isConstTrue(n->input(1))) {
            g.replaceAllUses({n, 0}, n->input(0));
            g.erase(n);
            ctx.count("opt.dead_code.etaTrue");
            return true;
        }
        return false;
    }
};

} // namespace

void
registerDeadCodePass(PassRegistry& r)
{
    r.registerPass("dead_code", [] {
        return std::make_unique<DeadCodePass>();
    });
}

} // namespace cash
