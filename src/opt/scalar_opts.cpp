/**
 * @file
 * Scalar optimizations on the Pegasus graph: constant folding,
 * algebraic simplification and common-subexpression elimination
 * (within a hyperblock; merging across hyperblocks would break the
 * per-activation dataflow discipline).
 */
#include <map>
#include <tuple>

#include "opt/pass.h"
#include "sim/value.h"
#include "support/diagnostics.h"

namespace cash {

namespace {

bool
constOf(const PortRef& p, int64_t* v)
{
    if (p.node->kind == NodeKind::Const) {
        *v = p.node->constValue;
        return true;
    }
    return false;
}

/** Is one operand the boolean negation of the other? */
bool
isNegationOf(const PortRef& x, const PortRef& y)
{
    if (x.node->kind == NodeKind::Arith && x.node->op == Op::NotBool &&
        x.node->input(0) == y)
        return true;
    if (y.node->kind == NodeKind::Arith && y.node->op == Op::NotBool &&
        y.node->input(0) == x)
        return true;
    return false;
}

class ScalarOptsPass : public Pass
{
  public:
    const char* name() const override { return "scalar_opts"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        bool anyChange = false;
        bool changed = true;
        int guard = 0;
        while (changed && guard++ < 32) {
            changed = false;
            for (Node* n : g.liveNodes()) {
                if (n->dead || n->kind != NodeKind::Arith)
                    continue;
                changed |= foldOrSimplify(g, n, ctx);
            }
            changed |= cse(g, ctx);
            anyChange |= changed;
        }
        return anyChange;
    }

  private:
    void
    replaceWithConst(Graph& g, Node* n, uint32_t value)
    {
        Node* c = g.newConst(
            n->type == VT::Pred ? (value ? 1 : 0)
                                : static_cast<int64_t>(value),
            n->type, n->hyperblock);
        g.replaceAllUses({n, 0}, {c, 0});
        g.erase(n);
    }

    bool
    foldOrSimplify(Graph& g, Node* n, OptContext& ctx)
    {
        if (n->op == Op::Copy || opIsUnary(n->op)) {
            int64_t a;
            if (constOf(n->input(0), &a)) {
                replaceWithConst(
                    g, n, evalUnary(n->op, static_cast<uint32_t>(a)));
                ctx.count("opt.scalar.fold");
                return true;
            }
            if (n->op == Op::Copy) {
                g.replaceAllUses({n, 0}, n->input(0));
                g.erase(n);
                return true;
            }
            // !!x on the 0/1 predicate domain.
            if (n->op == Op::NotBool) {
                Node* in = n->input(0).node;
                if (in->kind == NodeKind::Arith &&
                    in->op == Op::NotBool &&
                    (in->outputType(0) == VT::Pred ||
                     in->input(0).node->outputType(
                         in->input(0).port) == VT::Pred)) {
                    g.replaceAllUses({n, 0}, in->input(0));
                    g.erase(n);
                    ctx.count("opt.scalar.notnot");
                    return true;
                }
            }
            return false;
        }

        int64_t a = 0, b = 0;
        bool ca = constOf(n->input(0), &a);
        bool cb = constOf(n->input(1), &b);
        if (ca && cb) {
            replaceWithConst(g, n,
                             evalBinary(n->op, static_cast<uint32_t>(a),
                                        static_cast<uint32_t>(b)));
            ctx.count("opt.scalar.fold");
            return true;
        }

        // Algebraic identities.
        PortRef x = n->input(0), y = n->input(1);
        auto wire = [&](PortRef v) {
            g.replaceAllUses({n, 0}, v);
            g.erase(n);
            ctx.count("opt.scalar.algebra");
            return true;
        };
        auto toConst = [&](uint32_t v) {
            replaceWithConst(g, n, v);
            ctx.count("opt.scalar.algebra");
            return true;
        };

        switch (n->op) {
          case Op::Add:
            if (cb && b == 0)
                return wire(x);
            if (ca && a == 0)
                return wire(y);
            break;
          case Op::Sub:
            if (cb && b == 0)
                return wire(x);
            if (x == y)
                return toConst(0);
            break;
          case Op::Mul:
            if (cb && b == 1)
                return wire(x);
            if (ca && a == 1)
                return wire(y);
            if ((cb && b == 0) || (ca && a == 0))
                return toConst(0);
            break;
          case Op::And:
            if (n->type == VT::Pred) {
                if (cb)
                    return b ? wire(x) : toConst(0);
                if (ca)
                    return a ? wire(y) : toConst(0);
                if (isNegationOf(x, y))
                    return toConst(0);  // x ∧ ¬x
            } else {
                if ((cb && b == 0) || (ca && a == 0))
                    return toConst(0);
                if (cb && static_cast<uint32_t>(b) == 0xffffffffu)
                    return wire(x);
            }
            if (x == y)
                return wire(x);
            break;
          case Op::Or:
            if (n->type == VT::Pred) {
                if (cb)
                    return b ? toConst(1) : wire(x);
                if (ca)
                    return a ? toConst(1) : wire(y);
                if (isNegationOf(x, y))
                    return toConst(1);  // x ∨ ¬x
                // (a∧b) ∨ (a∧¬b) = a — the shape complementary
                // path predicates take (§5.3's collective domination).
                if (x.node->kind == NodeKind::Arith &&
                    x.node->op == Op::And &&
                    y.node->kind == NodeKind::Arith &&
                    y.node->op == Op::And) {
                    for (int i = 0; i < 2; i++) {
                        for (int j = 0; j < 2; j++) {
                            if (x.node->input(i) == y.node->input(j) &&
                                isNegationOf(x.node->input(1 - i),
                                             y.node->input(1 - j)))
                                return wire(x.node->input(i));
                        }
                    }
                }
            } else {
                if (cb && b == 0)
                    return wire(x);
                if (ca && a == 0)
                    return wire(y);
            }
            if (x == y)
                return wire(x);
            break;
          case Op::Xor:
            if (cb && b == 0)
                return wire(x);
            if (ca && a == 0)
                return wire(y);
            if (x == y)
                return toConst(0);
            break;
          case Op::Shl:
          case Op::ShrS:
          case Op::ShrU:
            if (cb && b == 0)
                return wire(x);
            break;
          case Op::Eq:
            if (x == y)
                return toConst(1);
            break;
          case Op::Ne:
            if (x == y)
                return toConst(0);
            break;
          default:
            break;
        }
        return false;
    }

    bool
    cse(Graph& g, OptContext& ctx)
    {
        using Key = std::tuple<int, Op, VT, const Node*, int,
                               const Node*, int>;
        std::map<Key, Node*> table;
        bool changed = false;
        for (Node* n : g.liveNodes()) {
            if (n->dead || n->kind != NodeKind::Arith)
                continue;
            PortRef x = n->input(0);
            PortRef y = n->numInputs() > 1 ? n->input(1) : PortRef{};
            // Canonical operand order for commutative operators.
            switch (n->op) {
              case Op::Add: case Op::Mul: case Op::And: case Op::Or:
              case Op::Xor: case Op::Eq: case Op::Ne:
                if (y.valid() &&
                    (x.node->id > y.node->id ||
                     (x.node == y.node && x.port > y.port)))
                    std::swap(x, y);
                break;
              default:
                break;
            }
            Key key{n->hyperblock, n->op, n->type, x.node, x.port,
                    y.node, y.port};
            auto [it, inserted] = table.try_emplace(key, n);
            if (!inserted && it->second != n) {
                g.replaceAllUses({n, 0}, {it->second, 0});
                g.erase(n);
                ctx.count("opt.scalar.cse");
                changed = true;
            }
        }
        return changed;
    }
};

} // namespace

void
registerScalarOptsPass(PassRegistry& r)
{
    r.registerPass("scalar_opts", [] {
        return std::make_unique<ScalarOptsPass>();
    });
}

} // namespace cash
