/**
 * @file
 * Load-after-store removal (paper §5.3, Figure 9; step B→C of the §2
 * example).
 *
 * A load whose token sources include stores to the same address
 * bypasses them: a decoded mux selects the stored value when the
 * corresponding store executed, and the load itself runs only when no
 * forwarding store did.  When the stores collectively dominate the
 * load (Gupta), the residual load predicate folds to false and dead
 * code elimination removes the load entirely.
 */
#include "analysis/boolean.h"
#include "opt/opt_util.h"
#include "opt/pass.h"
#include "pegasus/reachability.h"

namespace cash {

namespace {

class StoreForwardingPass : public Pass
{
  public:
    const char* name() const override { return "store_forwarding"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        bool changed = false;
        std::vector<Node*> loads;
        g.forEach([&](Node* n) {
            if (n->kind == NodeKind::Load && !n->storeForwarded)
                loads.push_back(n);
        });
        for (Node* load : loads) {
            if (!load->dead)
                changed |= forward(g, load, ctx);
        }
        return changed;
    }

  private:
    bool
    forward(Graph& g, Node* load, OptContext& ctx)
    {
        std::vector<PortRef> sources =
            optutil::expandTokenSources(load->input(1));
        std::vector<Node*> stores;
        for (const PortRef& s : sources) {
            if (s.node->kind == NodeKind::Store &&
                s.node->input(2) == load->input(2) &&
                s.node->size == load->size)
                stores.push_back(s.node);
        }
        if (stores.empty())
            return false;

        // Cycle guard: the stores' predicates and data must not derive
        // from this load's output.
        ReachabilityCache reach(g);
        for (Node* s : stores) {
            if (reach.reaches(load, s->input(0).node) ||
                reach.reaches(load, s->input(3).node))
                return false;
        }

        // The mux below decodes on store predicates, so they must be
        // one-hot.  Figure 9's stores are branch-exclusive; stores
        // *sequential* in the token graph (s0 |= ..; s0 &= ..) can
        // both fire, and then the one nearest the load defines memory.
        // Record, per store, every store ordered after it — its mux
        // arm must exclude those — and bail when two stores are
        // ordered in neither direction yet not predicate-disjoint
        // (no static priority exists).
        const size_t ns = stores.size();
        std::vector<std::vector<size_t>> later(ns);
        for (size_t i = 0; i < ns; i++) {
            for (size_t j = i + 1; j < ns; j++) {
                bool ij = optutil::orderedAfter(stores[i], stores[j]);
                bool ji = optutil::orderedAfter(stores[j], stores[i]);
                if (ij && ji)
                    return false;  // token ring: no static priority
                if (ij)
                    later[i].push_back(j);
                else if (ji)
                    later[j].push_back(i);
                else if (!predDisjoint(stores[i]->input(0),
                                       stores[j]->input(0)))
                    return false;
            }
        }

        PortRef pl = load->input(0);
        int hb = load->hyperblock;

        // anyStore = pS1 ∨ pS2 ∨ ...
        PortRef anyStore = stores[0]->input(0);
        for (size_t i = 1; i < stores.size(); i++)
            anyStore = {g.newArith(Op::Or, anyStore,
                                   stores[i]->input(0), hb, VT::Pred),
                        0};

        // Residual load predicate: pl ∧ ¬anyStore.
        PortRef residual;
        bool dominated = predImplies(pl, anyStore);
        if (dominated) {
            residual = {g.newConst(0, VT::Pred, hb), 0};
        } else {
            Node* notAny = g.newArith1(Op::NotBool, anyStore, hb,
                                       VT::Pred);
            residual = {g.newArith(Op::And, pl, {notAny, 0}, hb,
                                   VT::Pred),
                        0};
        }

        // Mux: stored values, then the residual load.  A store's arm
        // fires only when no store nearer the load does.
        Node* mux = g.newNode(NodeKind::Mux, VT::Word, hb);
        g.replaceAllUses({load, 0}, {mux, 0});
        for (size_t i = 0; i < ns; i++) {
            PortRef arm = stores[i]->input(0);
            for (size_t j : later[i]) {
                Node* notJ = g.newArith1(Op::NotBool,
                                         stores[j]->input(0), hb,
                                         VT::Pred);
                arm = {g.newArith(Op::And, arm, {notJ, 0}, hb,
                                  VT::Pred),
                       0};
            }
            g.addInput(mux, arm);
            g.addInput(mux, stores[i]->input(3));
        }
        g.addInput(mux, residual);
        g.addInput(mux, {load, 0});

        g.setInput(load, 0, residual);
        load->storeForwarded = true;
        ctx.count(dominated ? "opt.store_forwarding.removed"
                            : "opt.store_forwarding.bypassed");
        return true;
    }
};

} // namespace

void
registerStoreForwardingPass(PassRegistry& r)
{
    r.registerPass("store_forwarding", [] {
        return std::make_unique<StoreForwardingPass>();
    });
}

} // namespace cash
