/**
 * @file
 * Merging equivalent memory operations (paper §5.1, Figure 7).
 *
 * Two accesses of the same address and width whose token inputs come
 * from the same sources (i.e. they directly follow the same memory
 * state, with nothing in between) are combined into one access whose
 * predicate is the disjunction of the originals.  This generalizes
 * global CSE, partial redundancy elimination and code hoisting for
 * memory operations.  Stores additionally mux their data by the
 * original predicates.
 */
#include <algorithm>

#include "opt/opt_util.h"
#include "opt/pass.h"
#include "pegasus/reachability.h"

namespace cash {

namespace {

/** Token source sets equal as sets? */
bool
sameSources(const std::vector<PortRef>& a, const std::vector<PortRef>& b)
{
    if (a.size() != b.size())
        return false;
    for (const PortRef& x : a) {
        bool found = false;
        for (const PortRef& y : b)
            if (x == y)
                found = true;
        if (!found)
            return false;
    }
    return true;
}

class MemoryMergePass : public Pass
{
  public:
    const char* name() const override { return "memory_merge"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        bool changed = false;
        // Collect memory ops grouped by (hyperblock, kind, addr, size).
        std::vector<Node*> ops;
        g.forEach([&](Node* n) {
            if (n->isMemoryAccess())
                ops.push_back(n);
        });

        for (size_t i = 0; i < ops.size(); i++) {
            if (ops[i]->dead)
                continue;
            for (size_t j = i + 1; j < ops.size(); j++) {
                if (ops[i]->dead)
                    break;
                if (ops[j]->dead)
                    continue;
                if (tryMerge(g, ops[i], ops[j], ctx))
                    changed = true;
            }
        }
        return changed;
    }

  private:
    bool
    compatible(const Node* a, const Node* b) const
    {
        return a->kind == b->kind && a->hyperblock == b->hyperblock &&
               a->size == b->size && a->signExtend == b->signExtend &&
               a->input(2) == b->input(2);  // same address node
    }

    bool
    tryMerge(Graph& g, Node* a, Node* b, OptContext& ctx)
    {
        if (!compatible(a, b))
            return false;
        std::vector<PortRef> sa =
            optutil::expandTokenSources(a->input(a->tokenInIndex()));
        std::vector<PortRef> sb =
            optutil::expandTokenSources(b->input(b->tokenInIndex()));
        if (!sameSources(sa, sb))
            return false;

        PortRef pa = a->input(0), pb = b->input(0);
        // Cycle guard: the surviving access must not (transitively)
        // feed the other's predicate or stored value.
        ReachabilityCache reach(g);
        if (reach.reaches(b, pa.node) || reach.reaches(a, pb.node))
            return false;
        if (a->kind == NodeKind::Store &&
            (reach.reaches(b, a->input(3).node) ||
             reach.reaches(a, b->input(3).node)))
            return false;

        // Keep `a`; widen its predicate to pa ∨ pb.
        Node* orPred =
            g.newArith(Op::Or, pa, pb, a->hyperblock, VT::Pred);

        if (a->kind == NodeKind::Store) {
            // Mux the stored data by the original predicates.
            PortRef va = a->input(3), vb = b->input(3);
            if (!(va == vb)) {
                Node* mux =
                    g.newNode(NodeKind::Mux, VT::Word, a->hyperblock);
                g.addInput(mux, pa);
                g.addInput(mux, va);
                g.addInput(mux, pb);
                g.addInput(mux, vb);
                g.setInput(a, 3, {mux, 0});
            }
            ctx.count("opt.memory_merge.stores");
        } else {
            // Loads: forward a's data everywhere.
            g.replaceAllUses({b, 0}, {a, 0});
            ctx.count("opt.memory_merge.loads");
        }
        g.setInput(a, 0, {orPred, 0});

        // b's token consumers now follow a.
        g.replaceAllUses({b, b->tokenOutPort()},
                         {a, a->tokenOutPort()});
        g.erase(b);
        return true;
    }
};

} // namespace

void
registerMemoryMergePass(PassRegistry& r)
{
    r.registerPass("memory_merge", [] {
        return std::make_unique<MemoryMergePass>();
    });
}

} // namespace cash
