/**
 * @file
 * Transitive reduction of the token graph (paper §3.4).
 *
 * Keeps the invariant every other memory optimization relies on: a
 * token edge between two operations means they may conflict AND no
 * intervening operation affects the location.  Implemented by pruning
 * combine fan-ins: a source is redundant when it is already ordered
 * (through unconditional intra-hyperblock token flow) before another
 * source of the same consumer.
 */
#include "opt/opt_util.h"
#include "opt/pass.h"

namespace cash {

namespace {

class TransitiveReductionPass : public Pass
{
  public:
    const char* name() const override { return "transitive_reduction"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        bool changed = false;
        for (Node* n : g.liveNodes()) {
            if (n->dead)
                continue;
            int ti = tokenInputIndex(n);
            if (ti < 0 || ti >= n->numInputs())
                continue;
            changed |= reduceInput(g, n, ti, ctx);
        }
        return changed;
    }

  private:
    /** Token-carrying input of consumers we reduce. */
    int
    tokenInputIndex(const Node* n) const
    {
        switch (n->kind) {
          case NodeKind::Load:
          case NodeKind::Store:
          case NodeKind::Call:
          case NodeKind::Return:
          case NodeKind::TokenGen:
            return n->tokenInIndex();
          case NodeKind::Eta:
            return n->type == VT::Token ? 0 : -1;
          default:
            return -1;
        }
    }

    bool
    reduceInput(Graph& g, Node* n, int ti, OptContext& ctx)
    {
        PortRef in = n->input(ti);
        if (!in.valid())
            return false;
        std::vector<PortRef> sources = optutil::expandTokenSources(in);
        if (sources.size() < 2) {
            // Still collapse combine chains of one effective source.
            if (in.node->kind == NodeKind::Combine &&
                sources.size() == 1) {
                g.setInput(n, ti, sources[0]);
                return true;
            }
            return false;
        }

        std::vector<PortRef> kept;
        int dropped = 0;
        for (size_t i = 0; i < sources.size(); i++) {
            bool redundant = false;
            for (size_t j = 0; j < sources.size() && !redundant; j++) {
                if (i == j)
                    continue;
                // sources[i] already ordered before sources[j]?
                if (optutil::orderedAfter(sources[i].node,
                                          sources[j].node))
                    redundant = true;
            }
            if (redundant)
                dropped++;
            else
                kept.push_back(sources[i]);
        }

        bool flattened = in.node->kind == NodeKind::Combine &&
                         (dropped > 0 ||
                          static_cast<int>(kept.size()) !=
                              in.node->numInputs());
        if (dropped == 0 && !flattened)
            return false;

        optutil::setTokenInput(g, n, ti, kept);
        ctx.count("opt.transitive_reduction.dropped", dropped);
        return true;
    }
};

} // namespace

void
registerTransitiveReductionPass(PassRegistry& r)
{
    r.registerPass("transitive_reduction", [] {
        return std::make_unique<TransitiveReductionPass>();
    });
}

} // namespace cash
