/**
 * @file
 * Loop-invariant load motion (paper §5.4).
 *
 * A load inside a loop hyperblock whose address is loop-invariant,
 * whose predicate is the hyperblock constant-true, and whose memory
 * partition is never written inside the loop (its token comes straight
 * from the partition's ring merge) is lifted into the loop's
 * predecessor hyperblock, gated by the loop-entry predicate — the
 * paper's "loop-header hyperblock".  The loaded value re-enters the
 * loop through a fresh merge-eta ring (a value that "circulates around
 * the loop unchanged").
 *
 * Loop-invariant *stores* are never detected by this scheme: their
 * token input is a fresh token each iteration (§5.4's closing remark).
 */
#include <optional>

#include "analysis/boolean.h"
#include "analysis/loop_rings.h"
#include "opt/opt_util.h"
#include "opt/pass.h"

namespace cash {

namespace {

class LoopInvariantPass : public Pass
{
  public:
    const char* name() const override { return "loop_invariant"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        bool changed = false;
        std::vector<Node*> loads;
        g.forEach([&](Node* n) {
            if (n->kind == NodeKind::Load && !n->hoisted)
                loads.push_back(n);
        });
        for (Node* load : loads) {
            if (!load->dead)
                changed |= hoist(g, load, ctx);
        }
        return changed;
    }

  private:
    /**
     * Preheader equivalent of an in-loop value: constants and params
     * pass through; an invariant ring merge yields the value its
     * initial eta carries; invariant arithmetic is recursively valid
     * since its operands resolve outside the loop.
     */
    std::optional<PortRef>
    hoistValue(Graph& g, PortRef v, int hb, int depth)
    {
        if (depth > 16)
            return std::nullopt;
        Node* n = v.node;
        if (n->kind == NodeKind::Const || n->kind == NodeKind::Param ||
            n->hyperblock != hb)
            return v;
        if (n->kind == NodeKind::Merge) {
            // Invariant iff the back input recirculates the merge.
            PortRef init{};
            for (int i = 0; i < n->numInputs(); i++) {
                if (i == n->deciderIndex)
                    continue;
                PortRef in = n->input(i);
                if (n->inputIsBackEdge(i)) {
                    if (in.node->kind != NodeKind::Eta ||
                        !(in.node->input(0) == PortRef{n, 0}))
                        return std::nullopt;
                } else {
                    if (init.valid())
                        return std::nullopt;  // several entries
                    // Through an entry eta, or wired directly from
                    // the predecessor hyperblock.
                    init = in.node->kind == NodeKind::Eta
                               ? in.node->input(0)
                               : in;
                }
            }
            if (!init.valid())
                return std::nullopt;
            return init;  // value in the predecessor hyperblock
        }
        if (n->kind == NodeKind::Arith) {
            std::vector<PortRef> ins;
            for (int i = 0; i < n->numInputs(); i++) {
                auto h = hoistValue(g, n->input(i), hb, depth + 1);
                if (!h)
                    return std::nullopt;
                ins.push_back(*h);
            }
            // Rebuild outside the loop (hyperblock of the first
            // non-const operand, else the load's predecessor's).
            int outHb = ins[0].node->hyperblock;
            for (const PortRef& in : ins)
                if (in.node->kind != NodeKind::Const &&
                    in.node->kind != NodeKind::Param)
                    outHb = in.node->hyperblock;
            Node* clone;
            if (ins.size() == 1)
                clone = g.newArith1(n->op, ins[0], outHb, n->type);
            else
                clone = g.newArith(n->op, ins[0], ins[1], outHb,
                                   n->type);
            return PortRef{clone, 0};
        }
        return std::nullopt;
    }

    bool
    hoist(Graph& g, Node* load, OptContext& ctx)
    {
        int hb = load->hyperblock;
        if (hb < 0 || hb >= static_cast<int>(g.hyperblocks.size()) ||
            !g.hyperblocks[hb].isLoop)
            return false;
        // "Unconditional inside the body": the load runs on every
        // iteration — its predicate is the activation pulse (while
        // loops) or the loop-continuation predicate (for loops, whose
        // body is guarded by the header condition).
        const Node* pred = load->input(0).node;
        bool everyIteration =
            isTruePred(load->input(0)) ||
            (pred->kind == NodeKind::Merge && pred->type == VT::Pred &&
             pred->hyperblock == hb);
        // (checked against the ring's back predicate below, once the
        // ring has been identified)

        // The token must come straight from the partition ring merge,
        // and the ring must be the canonical rewriteable shape.
        auto ringOpt = findTokenRing(g, hb, load->partition);
        if (!ringOpt)
            return false;
        TokenRing& ring = *ringOpt;
        if (!everyIteration && !(load->input(0) == ring.backPred))
            return false;
        // Partition read-only inside the loop.
        for (Node* op : ring.ops)
            if (op->kind != NodeKind::Load)
                return false;
        std::vector<PortRef> srcs =
            optutil::expandTokenSources(load->input(1));
        if (srcs.size() != 1 || srcs[0].node != ring.merge)
            return false;
        if (ring.initialInputs.size() != 1)
            return false;
        PortRef initIn = ring.initialInputs[0];
        // The loop-entry edge either delivers through an eta, or (for
        // an unconditional edge out of the entry hyperblock) wires the
        // incoming token straight into the ring merge.
        Node* entryEta = nullptr;
        PortRef entryPred, entryToken;
        int preHb;
        if (initIn.node->kind == NodeKind::Eta) {
            entryEta = initIn.node;
            entryPred = entryEta->input(1);
            entryToken = entryEta->input(0);
            preHb = entryEta->hyperblock;
        } else {
            entryToken = initIn;
            preHb = initIn.node->hyperblock;
            entryPred = {g.newConst(1, VT::Pred, preHb), 0};
        }

        // Hoist the address computation.
        auto addr = hoistValue(g, load->input(2), hb, 0);
        if (!addr)
            return false;

        // The hoisted load, gated by loop entry.
        Node* hoistedLoad = g.newNode(NodeKind::Load, VT::Word, preHb);
        hoistedLoad->size = load->size;
        hoistedLoad->signExtend = load->signExtend;
        hoistedLoad->rwSet = load->rwSet;
        hoistedLoad->partition = load->partition;
        hoistedLoad->memId = load->memId;
        hoistedLoad->loc = load->loc;
        hoistedLoad->hoisted = true;
        g.addInput(hoistedLoad, entryPred);
        g.addInput(hoistedLoad, entryToken);
        g.addInput(hoistedLoad, *addr);

        // The partition state entering the loop now follows the
        // hoisted load.
        if (entryEta) {
            g.setInput(entryEta, 0, {hoistedLoad, 1});
        } else {
            for (int i = 0; i < ring.merge->numInputs(); i++) {
                if (ring.merge->input(i) == initIn &&
                    !ring.merge->inputIsBackEdge(i) &&
                    i != ring.merge->deciderIndex) {
                    g.setInput(ring.merge, i, {hoistedLoad, 1});
                    break;
                }
            }
        }

        // Circulate the loaded value around the loop.
        Node* valEta = g.newNode(NodeKind::Eta, VT::Word, preHb);
        g.addInput(valEta, {hoistedLoad, 0});
        g.addInput(valEta, entryPred);
        Node* valMerge = g.newNode(NodeKind::Merge, VT::Word, hb);
        g.addInput(valMerge, {valEta, 0});
        Node* backEta = g.newNode(NodeKind::Eta, VT::Word, hb);
        g.addInput(backEta, {valMerge, 0});
        g.addInput(backEta, ring.backPred);
        g.addInput(valMerge, {backEta, 0}, /*backEdge=*/true);
        valMerge->deciderIndex = valMerge->numInputs();
        g.addInput(valMerge, ring.backPred, /*backEdge=*/true);

        g.replaceAllUses({load, 0}, {valMerge, 0});
        g.bypassToken(load, load->input(1));
        g.erase(load);
        ctx.count("opt.loop_invariant.hoisted");
        return true;
    }
};

} // namespace

void
registerLoopInvariantPass(PassRegistry& r)
{
    r.registerPass("loop_invariant", [] {
        return std::make_unique<LoopInvariantPass>();
    });
}

} // namespace cash
