/**
 * @file
 * Read-only loop splitting (paper §6.1, Figures 12-13).
 *
 * When every access to a memory partition inside a loop is a read, the
 * per-iteration serialization through the token ring is unnecessary:
 * the ring becomes a generator (enabling all iterations' reads to
 * issue) plus a collector (so the loop only terminates when every read
 * has occurred).
 */
#include "analysis/loop_rings.h"
#include "opt/pass.h"
#include "opt/ring_split.h"

namespace cash {

namespace {

class ReadonlySplitPass : public Pass
{
  public:
    const char* name() const override { return "readonly_split"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        bool changed = false;
        for (const HbInfo& hb : g.hyperblocks) {
            if (!hb.isLoop)
                continue;
            for (int p = 0; p < g.numPartitions; p++) {
                auto ring = findTokenRing(g, hb.id, p);
                if (!ring || ring->alreadySplit || ring->ops.empty())
                    continue;
                bool allReads = true;
                for (Node* op : ring->ops)
                    if (op->kind != NodeKind::Load)
                        allReads = false;
                if (!allReads)
                    continue;
                ringsplit::splitRing(g, *ring, {}, ctx);
                ctx.count("opt.readonly_split.loops");
                changed = true;
            }
        }
        return changed;
    }
};

} // namespace

void
registerReadonlySplitPass(PassRegistry& r)
{
    r.registerPass("readonly_split", [] {
        return std::make_unique<ReadonlySplitPass>();
    });
}

} // namespace cash
