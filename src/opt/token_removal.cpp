/**
 * @file
 * Token-edge removal by address disambiguation (paper §4.3).
 *
 * For each pair of directly synchronized memory operations, try to
 * prove they can never touch the same address:
 *  (1) symbolic comparison of the affine address expressions,
 *  (2) induction-variable analysis (two IVs with the same step and
 *      provably different starts cancel inside the affine machinery),
 *  (3) disjoint read/write sets from the pointer analysis (this pays
 *      off on coarsely-built graphs).
 * When the proof succeeds the edge is removed and replacement edges
 * preserve the transitive closure (Figure 5): the consumer inherits
 * the producer's sources, and the consumer's own token consumers gain
 * a direct edge from the producer.
 */
#include "analysis/induction.h"
#include "analysis/symbolic.h"
#include "opt/opt_util.h"
#include "opt/pass.h"

namespace cash {

namespace {

class TokenRemovalPass : public Pass
{
  public:
    const char* name() const override { return "token_removal"; }

    bool
    run(Graph& g, OptContext& ctx) override
    {
        InductionAnalysis ivs(g);
        SymbolicAddress sym(&ivs);
        bool changed = false;

        for (Node* n : g.liveNodes()) {
            if (n->dead || !n->isMemoryAccess())
                continue;
            changed |= tryRemoveIncoming(g, n, sym, ctx);
        }
        return changed;
    }

  private:
    bool
    disambiguate(const Node* a, const Node* b, SymbolicAddress& sym,
                 OptContext& ctx) const
    {
        // Pointer analysis: disjoint read/write sets.
        if (ctx.oracle && !ctx.oracle->mayOverlap(a->rwSet, b->rwSet))
            return true;
        // Symbolic / induction-variable address comparison.
        AffineExpr ea = sym.expr(a->input(2));
        AffineExpr eb = sym.expr(b->input(2));
        return SymbolicAddress::disjoint(ea, a->size, eb, b->size);
    }

    bool
    tryRemoveIncoming(Graph& g, Node* n, SymbolicAddress& sym,
                      OptContext& ctx)
    {
        int ti = n->tokenInIndex();
        std::vector<PortRef> srcs =
            optutil::expandTokenSources(n->input(ti));

        for (const PortRef& s : srcs) {
            Node* j = s.node;
            if (!j->isMemoryAccess())
                continue;  // ring merges / calls stay
            if (!disambiguate(n, j, sym, ctx))
                continue;

            // Remove edge j → n, preserving the transitive closure.
            std::vector<PortRef> newSrcs;
            for (const PortRef& o : srcs)
                if (!(o == s))
                    newSrcs.push_back(o);
            for (const PortRef& inh :
                 optutil::expandTokenSources(j->input(j->tokenInIndex())))
            {
                bool dup = false;
                for (const PortRef& o : newSrcs)
                    if (o == inh)
                        dup = true;
                if (!dup)
                    newSrcs.push_back(inh);
            }
            CASH_ASSERT(!newSrcs.empty(),
                        "token removal left op with no ordering source");

            // n's token consumers must still be ordered after j.
            int jPort = j->tokenOutPort();
            for (Node* c : optutil::directTokenConsumers(n))
                optutil::addTokenSource(g, c, {j, jPort});

            optutil::setTokenInput(g, n, ti, newSrcs);
            ctx.count("opt.token_removal.removed");
            return true;
        }
        return false;
    }
};

} // namespace

void
registerTokenRemovalPass(PassRegistry& r)
{
    r.registerPass("token_removal", [] {
        return std::make_unique<TokenRemovalPass>();
    });
}

} // namespace cash
