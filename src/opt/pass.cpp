#include "opt/pass.h"

#include "pegasus/verifier.h"
#include "support/diagnostics.h"

namespace cash {

const char*
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::None: return "none";
      case OptLevel::Medium: return "medium";
      case OptLevel::Full: return "full";
    }
    return "?";
}

std::vector<std::unique_ptr<Pass>>
standardPipeline(OptLevel level)
{
    std::vector<std::unique_ptr<Pass>> passes;
    passes.push_back(makeScalarOpts());
    passes.push_back(makeDeadCode());
    if (level == OptLevel::None)
        return passes;

    // "Medium": memory parallelism (§4).
    passes.push_back(makeImmutableLoads());
    passes.push_back(makeTokenRemoval());
    passes.push_back(makeTransitiveReduction());
    passes.push_back(makeMonotonePipelining());

    if (level == OptLevel::Full) {
        // Redundancy elimination (§5).
        passes.push_back(makeMemoryMerge());
        passes.push_back(makeStoreForwarding());
        passes.push_back(makeDeadStore());
        passes.push_back(makeLoopInvariant());
        // Loop pipelining (§6).
        passes.push_back(makeReadonlySplit());
        passes.push_back(makeLoopDecoupling());
    }
    passes.push_back(makeScalarOpts());
    passes.push_back(makeDeadCode());
    return passes;
}

int
optimizeGraph(Graph& g, OptLevel level, OptContext& ctx)
{
    std::vector<std::unique_ptr<Pass>> passes = standardPipeline(level);
    const int maxRounds = 8;
    int round = 0;
    bool changed = true;
    while (changed && round < maxRounds) {
        changed = false;
        round++;
        for (auto& pass : passes) {
            bool c = pass->run(g, ctx);
            if (c)
                ctx.count(std::string("opt.") + pass->name() +
                          ".changed");
            if (ctx.verifyAfterEachPass)
                verifyOrDie(g, std::string("after ") + pass->name());
            changed |= c;
        }
    }
    g.compact();
    return round;
}

} // namespace cash
