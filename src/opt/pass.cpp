#include "opt/pass.h"

#include <chrono>

#include "pegasus/verifier.h"
#include "support/diagnostics.h"

namespace cash {

IrShape
measureIr(const Graph& g)
{
    IrShape s;
    g.forEach([&](Node* n) {
        s.nodes++;
        for (int i = 0; i < n->numInputs(); i++) {
            s.edges++;
            const PortRef& in = n->input(i);
            if (in.node->outputType(in.port) == VT::Token)
                s.tokenEdges++;
        }
    });
    return s;
}

const char*
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::None: return "none";
      case OptLevel::Medium: return "medium";
      case OptLevel::Full: return "full";
    }
    return "?";
}

std::vector<std::unique_ptr<Pass>>
standardPipeline(OptLevel level)
{
    std::vector<std::unique_ptr<Pass>> passes;
    passes.push_back(makeScalarOpts());
    passes.push_back(makeDeadCode());
    if (level == OptLevel::None)
        return passes;

    // "Medium": memory parallelism (§4).
    passes.push_back(makeImmutableLoads());
    passes.push_back(makeTokenRemoval());
    passes.push_back(makeTransitiveReduction());
    passes.push_back(makeMonotonePipelining());

    if (level == OptLevel::Full) {
        // Redundancy elimination (§5).
        passes.push_back(makeMemoryMerge());
        passes.push_back(makeStoreForwarding());
        passes.push_back(makeDeadStore());
        passes.push_back(makeLoopInvariant());
        // Loop pipelining (§6).
        passes.push_back(makeReadonlySplit());
        passes.push_back(makeLoopDecoupling());
    }
    passes.push_back(makeScalarOpts());
    passes.push_back(makeDeadCode());
    return passes;
}

namespace {

/** Run one pass and record its span, wall time and IR/stats deltas. */
bool
runInstrumented(Pass& pass, Graph& g, OptContext& ctx, int round)
{
    using Clock = std::chrono::steady_clock;
    TraceRecorder* tracer =
        ctx.tracer && ctx.tracer->enabled() ? ctx.tracer : nullptr;

    IrShape before = measureIr(g);
    StatSet statsBefore;
    if (tracer && ctx.stats)
        statsBefore = *ctx.stats;

    uint64_t traceStart = tracer ? tracer->nowUs() : 0;
    Clock::time_point t0 = Clock::now();
    bool changed = pass.run(g, ctx);
    int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - t0)
                     .count();
    IrShape after = measureIr(g);
    StatSet passDelta;
    if (tracer && ctx.stats)
        passDelta = ctx.stats->diff(statsBefore);

    const std::string prefix = std::string("opt.pass.") + pass.name();
    ctx.count(prefix + ".runs");
    ctx.count(prefix + ".time_us", us);
    ctx.count(prefix + ".nodes_removed", before.nodes - after.nodes);
    ctx.count(prefix + ".edges_removed", before.edges - after.edges);
    ctx.count(prefix + ".token_edges_removed",
              before.tokenEdges - after.tokenEdges);
    if (changed)
        ctx.count(std::string("opt.") + pass.name() + ".changed");

    if (tracer) {
        std::vector<TraceArg> args;
        args.emplace_back("graph", g.name);
        args.emplace_back("round", round);
        args.emplace_back("changed", changed ? 1 : 0);
        args.emplace_back("nodes_before", before.nodes);
        args.emplace_back("nodes_after", after.nodes);
        args.emplace_back("edges_before", before.edges);
        args.emplace_back("edges_after", after.edges);
        args.emplace_back("token_edges_before", before.tokenEdges);
        args.emplace_back("token_edges_after", after.tokenEdges);
        // Counters the pass itself bumped (e.g. its removal tally).
        for (const auto& [k, v] : passDelta.all())
            args.emplace_back(k, v);
        ctx.tracer->completeEvent(pass.name(), "opt", traceStart,
                                  tracer->nowUs() - traceStart,
                                  std::move(args));
    }
    return changed;
}

} // namespace

int
optimizeGraph(Graph& g, OptLevel level, OptContext& ctx)
{
    ScopedTimer whole(ctx.tracer, "optimize " + g.name, "opt.graph");
    std::vector<std::unique_ptr<Pass>> passes = standardPipeline(level);
    const int maxRounds = 8;
    int round = 0;
    bool changed = true;
    while (changed && round < maxRounds) {
        changed = false;
        round++;
        for (auto& pass : passes) {
            bool c = runInstrumented(*pass, g, ctx, round);
            if (ctx.verifyAfterEachPass)
                verifyOrDie(g, std::string("after ") + pass->name());
            changed |= c;
        }
    }
    g.compact();
    whole.arg("rounds", round);
    whole.arg("level", optLevelName(level));
    return round;
}

} // namespace cash
