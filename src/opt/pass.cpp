#include "opt/pass.h"

#include <chrono>

#include "analysis/ordering_checker.h"
#include "pegasus/verifier.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace cash {

IrShape
measureIr(const Graph& g)
{
    IrShape s;
    g.forEach([&](Node* n) {
        s.nodes++;
        for (int i = 0; i < n->numInputs(); i++) {
            s.edges++;
            const PortRef& in = n->input(i);
            if (in.node->outputType(in.port) == VT::Token)
                s.tokenEdges++;
        }
    });
    return s;
}

std::string
PassFailure::str() const
{
    return std::string(errorCodeName(code)) + " in pass '" + pass +
           "' on '" + function + "' (round " + std::to_string(round) +
           "): " + message;
}

const char*
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::None: return "none";
      case OptLevel::Medium: return "medium";
      case OptLevel::Full: return "full";
    }
    return "?";
}

// ---------------------------------------------------------------------
// PassRegistry
// ---------------------------------------------------------------------

// Registration hooks, one per pass translation unit.  Called from
// global() below; central dispatch (rather than static-initializer
// self-registration) keeps the registration order deterministic and
// survives static-library linking, which would drop object files with
// no referenced symbol.
void registerScalarOptsPass(PassRegistry&);
void registerDeadCodePass(PassRegistry&);
void registerTransitiveReductionPass(PassRegistry&);
void registerTokenRemovalPass(PassRegistry&);
void registerImmutableLoadsPass(PassRegistry&);
void registerMemoryMergePass(PassRegistry&);
void registerStoreForwardingPass(PassRegistry&);
void registerDeadStorePass(PassRegistry&);
void registerLoopInvariantPass(PassRegistry&);
void registerReadonlySplitPass(PassRegistry&);
void registerMonotonePipeliningPass(PassRegistry&);
void registerLoopDecouplingPass(PassRegistry&);
void registerInterprocTokenPruningPass(PassRegistry&);

namespace {

/** Registry keys spell '-' and '_' interchangeably. */
std::string
normalizePassName(const std::string& name)
{
    std::string key = name;
    for (char& c : key)
        if (c == '-')
            c = '_';
    return key;
}

} // namespace

PassRegistry&
PassRegistry::global()
{
    static PassRegistry* registry = [] {
        auto* r = new PassRegistry();
        registerScalarOptsPass(*r);            // folding, CSE
        registerDeadCodePass(*r);              // §4.1
        registerTransitiveReductionPass(*r);   // §3.4
        registerTokenRemovalPass(*r);          // §4.3
        registerImmutableLoadsPass(*r);        // §4.2
        registerMemoryMergePass(*r);           // §5.1
        registerStoreForwardingPass(*r);       // §5.3
        registerDeadStorePass(*r);             // §5.2
        registerLoopInvariantPass(*r);         // §5.4
        registerReadonlySplitPass(*r);         // §6.1
        registerMonotonePipeliningPass(*r);    // §6.2
        registerLoopDecouplingPass(*r);        // §6.3
        registerInterprocTokenPruningPass(*r); // whole-program MOD/REF
        return r;
    }();
    return *registry;
}

void
PassRegistry::registerPass(const std::string& name, Factory factory)
{
    std::lock_guard<std::mutex> lock(mu_);
    factories_[normalizePassName(name)] = std::move(factory);
}

bool
PassRegistry::has(const std::string& name) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return factories_.count(normalizePassName(name)) != 0;
}

std::vector<std::string>
PassRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [k, _] : factories_)
        out.push_back(k);
    return out;
}

std::unique_ptr<Pass>
PassRegistry::create(const std::string& name) const
{
    Factory factory;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = factories_.find(normalizePassName(name));
        if (it != factories_.end())
            factory = it->second;
    }
    if (!factory)
        fatal("unknown pass '" + name + "' (available: " +
              join(names(), ", ") + ")");
    return factory();
}

std::vector<std::unique_ptr<Pass>>
PassRegistry::createPipeline(const std::vector<std::string>& names) const
{
    std::vector<std::unique_ptr<Pass>> passes;
    passes.reserve(names.size());
    for (const std::string& name : names)
        passes.push_back(create(name));
    return passes;
}

// ---------------------------------------------------------------------
// Standard pipelines (Figure 19 configurations)
// ---------------------------------------------------------------------

std::vector<std::string>
standardPipelineNames(OptLevel level)
{
    std::vector<std::string> names = {"scalar_opts", "dead_code"};
    if (level == OptLevel::None)
        return names;

    // "Medium": memory parallelism (§4).
    names.insert(names.end(),
                 {"immutable_loads", "token_removal",
                  "transitive_reduction", "monotone_pipelining"});

    if (level == OptLevel::Full) {
        // Cross-call token pruning (whole-program MOD/REF), then
        // redundancy elimination (§5), then loop pipelining (§6).
        names.insert(names.end(),
                     {"interproc_token_pruning", "memory_merge",
                      "store_forwarding", "dead_store",
                      "loop_invariant", "readonly_split",
                      "loop_decoupling"});
    }
    names.insert(names.end(), {"scalar_opts", "dead_code"});
    return names;
}

std::vector<std::unique_ptr<Pass>>
standardPipeline(OptLevel level)
{
    return PassRegistry::global().createPipeline(
        standardPipelineNames(level));
}

namespace {

/** Run one pass and record its span, wall time and IR/stats deltas. */
bool
runInstrumented(Pass& pass, Graph& g, OptContext& ctx, int round)
{
    using Clock = std::chrono::steady_clock;
    TraceRecorder* tracer =
        ctx.tracer && ctx.tracer->enabled() ? ctx.tracer : nullptr;

    IrShape before = measureIr(g);
    StatSet statsBefore;
    if (tracer && ctx.stats)
        statsBefore = *ctx.stats;

    uint64_t traceStart = tracer ? tracer->nowUs() : 0;
    Clock::time_point t0 = Clock::now();
    bool changed = pass.run(g, ctx);
    int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                     Clock::now() - t0)
                     .count();
    IrShape after = measureIr(g);
    StatSet passDelta;
    if (tracer && ctx.stats)
        passDelta = ctx.stats->diff(statsBefore);

    const std::string prefix = std::string("opt.pass.") + pass.name();
    ctx.count(prefix + ".runs");
    ctx.count(prefix + ".time_us", us);
    ctx.count(prefix + ".nodes_removed", before.nodes - after.nodes);
    ctx.count(prefix + ".edges_removed", before.edges - after.edges);
    ctx.count(prefix + ".token_edges_removed",
              before.tokenEdges - after.tokenEdges);
    if (changed)
        ctx.count(std::string("opt.") + pass.name() + ".changed");

    if (tracer) {
        std::vector<TraceArg> args;
        args.emplace_back("graph", g.name);
        args.emplace_back("round", round);
        args.emplace_back("changed", changed ? 1 : 0);
        args.emplace_back("nodes_before", before.nodes);
        args.emplace_back("nodes_after", after.nodes);
        args.emplace_back("edges_before", before.edges);
        args.emplace_back("edges_after", after.edges);
        args.emplace_back("token_edges_before", before.tokenEdges);
        args.emplace_back("token_edges_after", after.tokenEdges);
        // Counters the pass itself bumped (e.g. its removal tally).
        for (const auto& [k, v] : passDelta.all())
            args.emplace_back(k, v);
        ctx.tracer->completeEvent(pass.name(), "opt", traceStart,
                                  tracer->nowUs() - traceStart,
                                  std::move(args));
    }
    return changed;
}

/**
 * Run one pass under fault isolation: snapshot, execute (with any
 * matching injected faults), verify, and on failure roll back and
 * report.  Returns whether the graph changed; sets @p failed.
 */
bool
runIsolated(Pass& pass, Graph& g, OptContext& ctx, int round,
            bool* failed)
{
    *failed = false;
    std::unique_ptr<Graph> snapshot;
    if (ctx.isolatePasses)
        snapshot = g.clone();

    bool changed = false;
    PassFailure fail;
    try {
        if (ctx.faults &&
            ctx.faults->match("pass.throw", g.name, pass.name(), round))
            throw InjectedFault(std::string("injected fault in pass '") +
                                pass.name() + "' on '" + g.name + "'");
        changed = runInstrumented(pass, g, ctx, round);
        if (ctx.faults) {
            const FaultSpec* fs = ctx.faults->match(
                "graph.corrupt-token", g.name, pass.name(), round);
            if (fs) {
                std::string what = corruptTokenEdge(g, fs->seed);
                if (!what.empty())
                    trace(1, "fault injection: " + what);
            }
        }
        if (ctx.verifyAfterEachPass) {
            std::vector<std::string> problems = verifyGraph(g);
            if (!problems.empty()) {
                fail.code = ErrorCode::VerifyError;
                fail.message =
                    problems[0] + " (" +
                    std::to_string(problems.size()) + " problems)";
            }
        }
        if (fail.code == ErrorCode::Ok && ctx.checkOrdering) {
            // Independent soundness oracle: the structural verifier
            // accepts any well-formed graph, but a pass can be
            // well-formed and still have dropped an ordering edge.
            std::vector<LintFinding> findings;
            OrderingChecker checker(g, ctx.oracle, ctx.layout,
                                    ctx.interproc);
            checker.check(findings);
            if (!findings.empty()) {
                fail.code = ErrorCode::AnalysisError;
                fail.message =
                    findings[0].explanation + " (" +
                    std::to_string(findings.size()) + " findings)";
            }
        }
    } catch (const FatalError& e) {
        fail.code = ErrorCode::PassError;
        fail.message = e.what();
    }
    if (fail.code == ErrorCode::Ok)
        return changed;

    fail.function = g.name;
    fail.pass = pass.name();
    fail.round = round;
    if (!ctx.isolatePasses)
        fatal("pass '" + fail.pass + "' failed on '" + fail.function +
              "': " + fail.message);

    // Roll back to the last-good graph and report.  The snapshot is
    // byte-exact (see Graph::clone), so downstream passes see the
    // graph as if the failed pass had never run.
    g = std::move(*snapshot);
    *failed = true;
    ctx.count("opt.rollbacks");
    if (ctx.failures)
        ctx.failures->push_back(fail);
    if (ctx.tracer && ctx.tracer->enabled())
        ctx.tracer->completeEvent(
            std::string("rollback ") + pass.name(), "opt.rollback",
            ctx.tracer->nowUs(), 0,
            {{"graph", g.name},
             {"round", round},
             {"error", std::string(errorCodeName(fail.code))}});
    return false;
}

/** Shared fixed-point driver; @p levelName annotates the span. */
int
optimizeImpl(Graph& g,
             const std::vector<std::unique_ptr<Pass>>& passes,
             OptContext& ctx, const char* levelName)
{
    ScopedTimer whole(ctx.tracer, "optimize " + g.name, "opt.graph");
    const int maxRounds = 8;
    // Once a pass fails on this function it is quarantined: skipped
    // for the remaining rounds of this function only.
    std::vector<bool> quarantined(passes.size(), false);
    int round = 0;
    bool changed = true;
    while (changed && round < maxRounds) {
        changed = false;
        round++;
        for (size_t pi = 0; pi < passes.size(); pi++) {
            if (quarantined[pi])
                continue;
            bool failed = false;
            changed |= runIsolated(*passes[pi], g, ctx, round, &failed);
            if (failed) {
                quarantined[pi] = true;
                ctx.count("opt.quarantined_passes");
            }
        }
    }
    g.compact();
    whole.arg("rounds", round);
    if (levelName)
        whole.arg("level", levelName);
    return round;
}

} // namespace

int
optimizeGraph(Graph& g,
              const std::vector<std::unique_ptr<Pass>>& passes,
              OptContext& ctx)
{
    return optimizeImpl(g, passes, ctx, nullptr);
}

int
optimizeGraph(Graph& g, OptLevel level, OptContext& ctx)
{
    return optimizeImpl(g, standardPipeline(level), ctx,
                        optLevelName(level));
}

} // namespace cash
