/**
 * @file
 * Pegasus dataflow-graph nodes (paper §3).
 *
 * A Pegasus graph is a directed graph whose nodes are operations and
 * whose edges carry values: 32-bit words, 1-bit predicates, or 0-bit
 * synchronization tokens (§3.2).  Nodes may have several output ports
 * (a load produces both a data value and a token).
 *
 * Input layout conventions (fixed per kind):
 *   Arith:    [a] or [a, b]
 *   Mux:      [p0, d0, p1, d1, ...]        (decoded mux, §3.1)
 *   Merge:    [in0, in1, ...]              (one per incoming HB edge)
 *   Eta:      [value, pred]
 *   Combine:  [t0, t1, ...]
 *   Load:     [pred, token, addr]          outputs: 0=data, 1=token
 *   Store:    [pred, token, addr, value]   outputs: 0=token
 *   Call:     [pred, token, arg...]        outputs: 0=result, 1=token
 *   Return:   [pred, token] or [pred, token, value]
 *   TokenGen: [pred, token]                outputs: 0=token (§6.3)
 *   Const/Param/InitialToken: no inputs
 */
#ifndef CASH_PEGASUS_NODE_H
#define CASH_PEGASUS_NODE_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/memloc.h"
#include "cfg/cfg.h"
#include "support/diagnostics.h"

namespace cash {

/** The three Pegasus value types. */
enum class VT
{
    Word,   ///< 32-bit data (integers and pointers)
    Pred,   ///< boolean predicate
    Token,  ///< 0-bit synchronization token
};

const char* vtName(VT vt);

enum class NodeKind
{
    Const,
    Param,
    Arith,
    Mux,
    Merge,
    Eta,
    Combine,
    InitialToken,
    Load,
    Store,
    Call,
    Return,
    TokenGen,
};

const char* nodeKindName(NodeKind k);

class Node;

/** A reference to one output port of a node. */
struct PortRef
{
    Node* node = nullptr;
    int port = 0;

    bool valid() const { return node != nullptr; }
    bool operator==(const PortRef& o) const
    {
        return node == o.node && port == o.port;
    }
    bool operator!=(const PortRef& o) const { return !(*this == o); }
};

/** A use record: node @p user reads this value at input @p index. */
struct Use
{
    Node* user = nullptr;
    int index = 0;
};

/**
 * One Pegasus operation.
 *
 * Inputs are ordered PortRefs; the matching Use lists on producers are
 * maintained by the Graph mutation API (never modify inputs directly).
 */
class Node
{
  public:
    int id = -1;
    NodeKind kind = NodeKind::Const;
    Op op = Op::Copy;           ///< For Arith nodes.
    VT type = VT::Word;         ///< Type of output port 0.
    int64_t constValue = 0;     ///< For Const nodes.
    int paramIndex = -1;        ///< For Param nodes.
    int hyperblock = -1;        ///< Owning hyperblock id.

    // Memory operation fields (Load/Store/Call/Return).
    int size = 4;               ///< Access width.
    bool signExtend = true;
    LocationSet rwSet;
    int partition = -1;         ///< Memory partition (token ring) id.
    int memId = -1;             ///< Stable id of the source access.

    const FuncDecl* callee = nullptr;  ///< For Call nodes.
    /**
     * Call nodes: per-call-site effective effect sets resolved by the
     * interprocedural MOD/REF analysis (analysis/modref.h), copied
     * from the lowered call Instr by the builder.  Valid only when
     * callEffectsValid; consumed by the `interproc_token_pruning`
     * pass and the per-pass ordering checker.
     */
    LocationSet callReads, callWrites;
    bool callEffectsValid = false;
    int tkCount = 0;            ///< n for TokenGen tk(n).
    /**
     * Merge nodes in loop headers are mu-nodes: this input slot holds
     * the loop-continuation predicate that steers consumption between
     * the initial and back-edge input streams (-1 = plain merge).
     */
    int deciderIndex = -1;
    SourceLoc loc;
    bool dead = false;          ///< Removed from the graph.
    bool storeForwarded = false;///< §5.3 already applied to this load.
    bool hoisted = false;       ///< §5.4 produced this load.

    /** Ordered inputs. */
    const std::vector<PortRef>& inputs() const { return inputs_; }
    const PortRef& input(int i) const { return inputs_.at(i); }
    int numInputs() const { return static_cast<int>(inputs_.size()); }

    /** Back-edge flags parallel to inputs (loop-carried merge inputs). */
    bool inputIsBackEdge(int i) const { return backEdge_.at(i); }

    /** Uses of all output ports of this node. */
    const std::vector<Use>& uses() const { return uses_; }

    /** Number of output ports (2 for Load/Call, 1 otherwise, 0 none). */
    int numOutputs() const;

    /** Value type of output @p port. */
    VT outputType(int port) const;

    /** True for Load/Store nodes. */
    bool isMemoryAccess() const
    {
        return kind == NodeKind::Load || kind == NodeKind::Store;
    }

    /** Nodes that produce/consume tokens and order side effects. */
    bool
    isSideEffect() const
    {
        return isMemoryAccess() || kind == NodeKind::Call ||
               kind == NodeKind::Return;
    }

    /** Port of the token output (-1 when none). */
    int tokenOutPort() const;

    /** Index of the token input (-1 when none). */
    int tokenInIndex() const;

    /** Index of the predicate input (-1 when none). */
    int predInIndex() const;

    std::string str() const;

  private:
    friend class Graph;
    std::vector<PortRef> inputs_;
    std::vector<bool> backEdge_;
    std::vector<Use> uses_;
};

} // namespace cash

#endif // CASH_PEGASUS_NODE_H
