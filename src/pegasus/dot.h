/**
 * @file
 * Graphviz output for Pegasus graphs, in the visual style of the
 * paper's figures: dotted edges carry predicates, dashed edges carry
 * tokens, trapezoids are muxes, triangles are eta/merge nodes.
 */
#ifndef CASH_PEGASUS_DOT_H
#define CASH_PEGASUS_DOT_H

#include <string>

#include "pegasus/graph.h"

namespace cash {

/** Render @p g as a Graphviz "dot" document. */
std::string toDot(const Graph& g);

/** Plain-text listing of all live nodes (stable for tests). */
std::string toText(const Graph& g);

} // namespace cash

#endif // CASH_PEGASUS_DOT_H
