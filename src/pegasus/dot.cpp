#include "pegasus/dot.h"

#include <sstream>

namespace cash {

namespace {

std::string
nodeLabel(const Node* n)
{
    switch (n->kind) {
      case NodeKind::Const:
        return std::to_string(n->constValue);
      case NodeKind::Param:
        return "arg" + std::to_string(n->paramIndex);
      case NodeKind::Arith:
        return opName(n->op);
      case NodeKind::Mux:
        return "mux";
      case NodeKind::Merge:
        return "merge";
      case NodeKind::Eta:
        return "eta";
      case NodeKind::Combine:
        return "V";
      case NodeKind::InitialToken:
        return "*";
      case NodeKind::Load:
        return "=[ ]" + std::to_string(n->size);
      case NodeKind::Store:
        return "[ ]=" + std::to_string(n->size);
      case NodeKind::Call:
        return "call " + (n->callee ? n->callee->name : "?");
      case NodeKind::Return:
        return "ret";
      case NodeKind::TokenGen:
        return "tk(" + std::to_string(n->tkCount) + ")";
    }
    return "?";
}

std::string
nodeShape(const Node* n)
{
    switch (n->kind) {
      case NodeKind::Mux: return "trapezium";
      case NodeKind::Merge: return "triangle";
      case NodeKind::Eta: return "invtriangle";
      case NodeKind::Combine: return "invhouse";
      case NodeKind::Load:
      case NodeKind::Store: return "box";
      case NodeKind::Call: return "box3d";
      case NodeKind::Return: return "doublecircle";
      case NodeKind::TokenGen: return "diamond";
      case NodeKind::Const:
      case NodeKind::Param:
      case NodeKind::InitialToken: return "plaintext";
      default: return "ellipse";
    }
}

} // namespace

std::string
toDot(const Graph& g)
{
    std::ostringstream os;
    os << "digraph \"" << g.name << "\" {\n";
    os << "  rankdir=TB;\n  node [fontsize=10];\n";

    // Cluster nodes by hyperblock.
    std::map<int, std::vector<const Node*>> byHb;
    g.forEach([&](Node* n) { byHb[n->hyperblock].push_back(n); });

    for (const auto& [hb, nodes] : byHb) {
        os << "  subgraph cluster_hb" << hb << " {\n";
        os << "    label=\"hyperblock " << hb << "\";\n";
        for (const Node* n : nodes) {
            os << "    n" << n->id << " [label=\"" << nodeLabel(n)
               << "\", shape=" << nodeShape(n) << "];\n";
        }
        os << "  }\n";
    }

    g.forEach([&](Node* n) {
        for (int i = 0; i < n->numInputs(); i++) {
            const PortRef& in = n->input(i);
            if (!in.valid())
                continue;
            VT vt = in.node->outputType(in.port);
            os << "  n" << in.node->id << " -> n" << n->id;
            std::vector<std::string> attrs;
            if (vt == VT::Pred)
                attrs.push_back("style=dotted");
            else if (vt == VT::Token)
                attrs.push_back("style=dashed");
            if (n->inputIsBackEdge(i))
                attrs.push_back("constraint=false, color=red");
            if (!attrs.empty()) {
                os << " [";
                for (size_t k = 0; k < attrs.size(); k++) {
                    if (k)
                        os << ", ";
                    os << attrs[k];
                }
                os << "]";
            }
            os << ";\n";
        }
    });

    os << "}\n";
    return os.str();
}

std::string
toText(const Graph& g)
{
    std::ostringstream os;
    os << "graph " << g.name << " (" << g.numParams << " params, "
       << g.numPartitions << " partitions)\n";
    g.forEach([&](Node* n) { os << "  " << n->str() << "\n"; });
    return os.str();
}

} // namespace cash
