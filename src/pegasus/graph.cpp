#include "pegasus/graph.h"

#include <algorithm>
#include <set>

namespace cash {

Node*
Graph::newNode(NodeKind kind, VT type, int hyperblock)
{
    auto n = std::make_unique<Node>();
    n->id = static_cast<int>(nodes_.size());
    n->kind = kind;
    n->type = type;
    n->hyperblock = hyperblock;
    nodes_.push_back(std::move(n));
    return nodes_.back().get();
}

Node*
Graph::newConst(int64_t value, VT type, int hyperblock)
{
    Node* n = newNode(NodeKind::Const, type, hyperblock);
    n->constValue = value;
    return n;
}

Node*
Graph::newArith(Op op, PortRef a, PortRef b, int hyperblock, VT type)
{
    Node* n = newNode(NodeKind::Arith, type, hyperblock);
    n->op = op;
    addInput(n, a);
    addInput(n, b);
    return n;
}

Node*
Graph::newArith1(Op op, PortRef a, int hyperblock, VT type)
{
    Node* n = newNode(NodeKind::Arith, type, hyperblock);
    n->op = op;
    addInput(n, a);
    return n;
}

Node*
Graph::truePred(int hyperblock)
{
    return newConst(1, VT::Pred, hyperblock);
}

Node*
Graph::falsePred(int hyperblock)
{
    return newConst(0, VT::Pred, hyperblock);
}

void
Graph::addInput(Node* n, PortRef v, bool backEdge)
{
    CASH_ASSERT(v.valid(), "adding invalid input");
    n->inputs_.push_back(v);
    n->backEdge_.push_back(backEdge);
    v.node->uses_.push_back({n, static_cast<int>(n->inputs_.size()) - 1});
}

void
Graph::unuse(Node* producer, Node* user, int index)
{
    auto& uses = producer->uses_;
    for (size_t i = 0; i < uses.size(); i++) {
        if (uses[i].user == user && uses[i].index == index) {
            uses[i] = uses.back();
            uses.pop_back();
            return;
        }
    }
    panic("use-list inconsistency");
}

void
Graph::setInput(Node* n, int index, PortRef v)
{
    CASH_ASSERT(index >= 0 && index < n->numInputs(), "bad input index");
    PortRef old = n->inputs_[index];
    if (old == v)
        return;
    if (old.valid())
        unuse(old.node, n, index);
    n->inputs_[index] = v;
    if (v.valid())
        v.node->uses_.push_back({n, index});
}

void
Graph::removeInput(Node* n, int index)
{
    CASH_ASSERT(index >= 0 && index < n->numInputs(), "bad input index");
    CASH_ASSERT(index != n->deciderIndex,
                "removing a merge decider input directly");
    if (n->deciderIndex > index)
        n->deciderIndex--;
    PortRef old = n->inputs_[index];
    if (old.valid())
        unuse(old.node, n, index);
    // Shift the remaining inputs down, fixing the producers' use
    // indices.
    for (int i = index + 1; i < n->numInputs(); i++) {
        PortRef in = n->inputs_[i];
        if (in.valid()) {
            for (Use& u : in.node->uses_) {
                if (u.user == n && u.index == i)
                    u.index = i - 1;
            }
        }
        n->inputs_[i - 1] = in;
        n->backEdge_[i - 1] = n->backEdge_[i];
    }
    n->inputs_.pop_back();
    n->backEdge_.pop_back();
}

void
Graph::removeDecider(Node* merge)
{
    CASH_ASSERT(merge->deciderIndex >= 0, "no decider to remove");
    int idx = merge->deciderIndex;
    merge->deciderIndex = -1;
    removeInput(merge, idx);
}

void
Graph::replaceAllUses(PortRef from, PortRef to)
{
    CASH_ASSERT(from.valid() && to.valid(), "invalid RAUW");
    // Copy the uses touching this port; setInput mutates the list.
    std::vector<Use> uses;
    for (const Use& u : from.node->uses_)
        if (u.user->inputs_[u.index] == from)
            uses.push_back(u);
    for (const Use& u : uses)
        setInput(u.user, u.index, to);
}

void
Graph::erase(Node* n)
{
    CASH_ASSERT(n->uses_.empty(), "erasing node with uses: " + n->str());
    for (int i = 0; i < n->numInputs(); i++) {
        PortRef in = n->inputs_[i];
        if (in.valid())
            unuse(in.node, n, i);
    }
    n->inputs_.clear();
    n->backEdge_.clear();
    n->dead = true;
}

void
Graph::compact()
{
    // Keep ids stable for live nodes but drop dead storage.
    std::vector<std::unique_ptr<Node>> keep;
    keep.reserve(nodes_.size());
    for (auto& n : nodes_)
        if (!n->dead)
            keep.push_back(std::move(n));
    nodes_ = std::move(keep);
}

std::unique_ptr<Graph>
Graph::clone() const
{
    auto out = std::make_unique<Graph>();
    out->name = name;
    out->decl = decl;
    out->numParams = numParams;
    out->hasFrame = hasFrame;
    out->frameBytes = frameBytes;
    out->hyperblocks = hyperblocks;
    out->numPartitions = numPartitions;

    // Replicate every node slot (dead ones included) so ids and
    // iteration order match exactly.
    std::map<const Node*, Node*> remap;
    out->nodes_.reserve(nodes_.size());
    for (const auto& n : nodes_) {
        auto copy = std::make_unique<Node>(*n);
        // The copied input/use lists still point into this graph;
        // remapped below once every counterpart exists.
        remap[n.get()] = copy.get();
        out->nodes_.push_back(std::move(copy));
    }
    auto mapped = [&](Node* old) -> Node* {
        return old ? remap.at(old) : nullptr;
    };
    for (const auto& n : out->nodes_) {
        for (PortRef& in : n->inputs_)
            in.node = mapped(in.node);
        for (Use& u : n->uses_)
            u.user = mapped(u.user);
    }

    for (Node* p : paramNodes)
        out->paramNodes.push_back(mapped(p));
    out->initialToken = mapped(initialToken);
    for (Node* r : returnNodes)
        out->returnNodes.push_back(mapped(r));
    for (const auto& [key, merge] : ringMerge)
        out->ringMerge[key] = mapped(merge);
    return out;
}

std::vector<Node*>
Graph::liveNodes() const
{
    std::vector<Node*> out;
    out.reserve(nodes_.size());
    for (const auto& n : nodes_)
        if (!n->dead)
            out.push_back(n.get());
    return out;
}

int
Graph::numLive() const
{
    int c = 0;
    for (const auto& n : nodes_)
        if (!n->dead)
            c++;
    return c;
}

void
Graph::forEach(const std::function<void(Node*)>& fn) const
{
    for (const auto& n : nodes_)
        if (!n->dead)
            fn(n.get());
}

std::vector<PortRef>
Graph::tokenSources(const Node* n) const
{
    std::vector<PortRef> out;
    int ti = n->tokenInIndex();
    if (ti < 0 || ti >= n->numInputs())
        return out;
    std::vector<PortRef> work{n->input(ti)};
    std::set<const Node*> seen;
    while (!work.empty()) {
        PortRef cur = work.back();
        work.pop_back();
        if (!cur.valid() || seen.count(cur.node))
            continue;
        seen.insert(cur.node);
        if (cur.node->kind == NodeKind::Combine) {
            for (const PortRef& in : cur.node->inputs())
                work.push_back(in);
        } else {
            out.push_back(cur);
        }
    }
    return out;
}

void
Graph::bypassToken(Node* victim, PortRef replacement)
{
    int port = victim->tokenOutPort();
    CASH_ASSERT(port >= 0, "bypassing node without token output");
    replaceAllUses({victim, port}, replacement);
}

} // namespace cash
