/**
 * @file
 * Structural verifier for Pegasus graphs.
 *
 * Run after construction and after every optimization pass when
 * verification is enabled; reports violated invariants:
 * input arity/typing per node kind, use-list consistency, acyclicity
 * of the forward graph (back edges excluded), and well-formed memory
 * operations (predicate + token inputs present).
 */
#ifndef CASH_PEGASUS_VERIFIER_H
#define CASH_PEGASUS_VERIFIER_H

#include <string>
#include <vector>

#include "pegasus/graph.h"

namespace cash {

/** Returns a list of problems; empty means the graph is well-formed. */
std::vector<std::string> verifyGraph(const Graph& g);

/**
 * Verify and raise a recoverable FatalError naming the first problem.
 * Callers that can degrade gracefully (the pass manager's rollback
 * path) use verifyGraph() directly instead.
 */
void verifyOrDie(const Graph& g, const std::string& when);

} // namespace cash

#endif // CASH_PEGASUS_VERIFIER_H
