/**
 * @file
 * Structural verifier for Pegasus graphs.
 *
 * Run after construction and after every optimization pass in debug
 * builds; panics (via returned diagnostics) on violated invariants:
 * input arity/typing per node kind, use-list consistency, acyclicity
 * of the forward graph (back edges excluded), and well-formed memory
 * operations (predicate + token inputs present).
 */
#ifndef CASH_PEGASUS_VERIFIER_H
#define CASH_PEGASUS_VERIFIER_H

#include <string>
#include <vector>

#include "pegasus/graph.h"

namespace cash {

/** Returns a list of problems; empty means the graph is well-formed. */
std::vector<std::string> verifyGraph(const Graph& g);

/** Verify and panic with the first problem (for tests/pass pipeline). */
void verifyOrDie(const Graph& g, const std::string& when);

} // namespace cash

#endif // CASH_PEGASUS_VERIFIER_H
