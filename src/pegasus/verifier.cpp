#include "pegasus/verifier.h"

#include <map>
#include <set>

#include "support/diagnostics.h"

namespace cash {

namespace {

void
expectInput(const Node* n, int idx, VT vt,
            std::vector<std::string>& problems)
{
    if (idx >= n->numInputs()) {
        problems.push_back(n->str() + ": missing input " +
                           std::to_string(idx));
        return;
    }
    const PortRef& in = n->input(idx);
    if (!in.valid()) {
        problems.push_back(n->str() + ": invalid input " +
                           std::to_string(idx));
        return;
    }
    if (in.node->dead) {
        problems.push_back(n->str() + ": input " + std::to_string(idx) +
                           " from dead node");
        return;
    }
    if (in.port >= in.node->numOutputs()) {
        problems.push_back(n->str() + ": input " + std::to_string(idx) +
                           " reads nonexistent port");
        return;
    }
    VT got = in.node->outputType(in.port);
    // Word and Pred interconvert freely in practice (0/1 values); only
    // token/value mismatches are hard errors.
    bool ok = (got == vt) ||
              (got != VT::Token && vt != VT::Token);
    if (!ok) {
        problems.push_back(n->str() + ": input " + std::to_string(idx) +
                           " has type " + vtName(got) + ", expected " +
                           vtName(vt));
    }
}

} // namespace

std::vector<std::string>
verifyGraph(const Graph& g)
{
    std::vector<std::string> problems;

    g.forEach([&](Node* n) {
        switch (n->kind) {
          case NodeKind::Const:
          case NodeKind::Param:
          case NodeKind::InitialToken:
            if (n->numInputs() != 0)
                problems.push_back(n->str() + ": source with inputs");
            break;
          case NodeKind::Arith: {
            int want = opIsUnary(n->op) ? 1 : 2;
            if (n->op == Op::Copy)
                want = 1;
            if (n->numInputs() != want) {
                problems.push_back(n->str() + ": arith arity");
            } else {
                for (int i = 0; i < want; i++)
                    expectInput(n, i, VT::Word, problems);
            }
            break;
          }
          case NodeKind::Mux:
            if (n->numInputs() < 2 || n->numInputs() % 2 != 0) {
                problems.push_back(n->str() + ": mux arity");
            } else {
                for (int i = 0; i < n->numInputs(); i += 2) {
                    expectInput(n, i, VT::Pred, problems);
                    expectInput(n, i + 1, n->type, problems);
                }
            }
            break;
          case NodeKind::Merge: {
            // Zero-input merges are legal: they belong to unreachable
            // hyperblocks (e.g. past an infinite loop) and never fire;
            // dead-code elimination replaces them with constants.
            for (int i = 0; i < n->numInputs(); i++)
                expectInput(n, i,
                            i == n->deciderIndex ? VT::Pred : n->type,
                            problems);
            if (n->deciderIndex >= 0 &&
                n->deciderIndex != n->numInputs() - 1)
                problems.push_back(n->str() + ": decider not last");
            bool hasBack = false;
            for (int i = 0; i < n->numInputs(); i++)
                if (i != n->deciderIndex && n->inputIsBackEdge(i))
                    hasBack = true;
            if (hasBack && n->deciderIndex < 0)
                problems.push_back(n->str() +
                                   ": back-edge merge without decider");
            break;
          }
          case NodeKind::Eta:
            if (n->numInputs() != 2) {
                problems.push_back(n->str() + ": eta arity");
            } else {
                expectInput(n, 0, n->type, problems);
                expectInput(n, 1, VT::Pred, problems);
            }
            break;
          case NodeKind::Combine:
            if (n->numInputs() < 1)
                problems.push_back(n->str() + ": empty combine");
            for (int i = 0; i < n->numInputs(); i++)
                expectInput(n, i, VT::Token, problems);
            break;
          case NodeKind::Load:
            if (n->numInputs() != 3) {
                problems.push_back(n->str() + ": load arity");
            } else {
                expectInput(n, 0, VT::Pred, problems);
                expectInput(n, 1, VT::Token, problems);
                expectInput(n, 2, VT::Word, problems);
            }
            break;
          case NodeKind::Store:
            if (n->numInputs() != 4) {
                problems.push_back(n->str() + ": store arity");
            } else {
                expectInput(n, 0, VT::Pred, problems);
                expectInput(n, 1, VT::Token, problems);
                expectInput(n, 2, VT::Word, problems);
                expectInput(n, 3, VT::Word, problems);
            }
            break;
          case NodeKind::Call:
            if (n->numInputs() < 2) {
                problems.push_back(n->str() + ": call arity");
            } else {
                expectInput(n, 0, VT::Pred, problems);
                expectInput(n, 1, VT::Token, problems);
                for (int i = 2; i < n->numInputs(); i++)
                    expectInput(n, i, VT::Word, problems);
            }
            break;
          case NodeKind::Return:
            if (n->numInputs() < 2 || n->numInputs() > 3) {
                problems.push_back(n->str() + ": return arity");
            } else {
                expectInput(n, 0, VT::Pred, problems);
                expectInput(n, 1, VT::Token, problems);
                if (n->numInputs() == 3)
                    expectInput(n, 2, VT::Word, problems);
            }
            break;
          case NodeKind::TokenGen:
            if (n->numInputs() != 2) {
                problems.push_back(n->str() + ": tokengen arity");
            } else {
                expectInput(n, 0, VT::Pred, problems);
                expectInput(n, 1, VT::Token, problems);
            }
            break;
        }

        // Token values may only be produced by the plumbing §3.2
        // defines: side effects, combines, ring merges/etas, initial
        // tokens, token generators and the constant tokens immutable
        // loads anchor to (§4.2).  A token-typed mux/arith/param
        // smuggles ordering through value operators — both endpoints
        // of such an edge are non-memory, non-side-effecting nodes,
        // and the error previously surfaced only as simulator
        // starvation.
        if (n->type == VT::Token &&
            (n->kind == NodeKind::Mux || n->kind == NodeKind::Arith ||
             n->kind == NodeKind::Param))
            problems.push_back(n->str() +
                               ": token-typed value operator (only"
                               " merges, etas, combines, constants and"
                               " side effects may carry tokens)");

        // Etas deliver to merges only: merges are the unique consumers
        // of the end-of-stream markers etas emit on not-taken
        // activations.
        if (n->kind == NodeKind::Eta) {
            for (const Use& u : n->uses()) {
                if (!u.user->dead && u.user->kind != NodeKind::Merge)
                    problems.push_back(n->str() +
                                       ": eta feeding non-merge " +
                                       u.user->str());
            }
        }

        // Use-list consistency.
        for (const Use& u : n->uses()) {
            if (u.user->dead) {
                problems.push_back(n->str() + ": used by dead node");
                continue;
            }
            if (u.index >= u.user->numInputs() ||
                u.user->input(u.index).node != n) {
                problems.push_back(n->str() + ": stale use record");
            }
        }
    });

    // Acyclicity of the forward graph (back edges removed).
    std::map<const Node*, int> state;  // 0 unseen, 1 open, 2 done
    bool cyclic = false;
    std::function<void(const Node*)> dfs = [&](const Node* n) {
        if (cyclic)
            return;
        state[n] = 1;
        for (int i = 0; i < n->numInputs(); i++) {
            if (n->inputIsBackEdge(i))
                continue;
            const Node* in = n->input(i).node;
            if (!in || in->dead)
                continue;
            int s = state[in];
            if (s == 1) {
                cyclic = true;
                problems.push_back("cycle through " + in->str());
                return;
            }
            if (s == 0)
                dfs(in);
        }
        state[n] = 2;
    };
    g.forEach([&](Node* n) {
        if (!cyclic && state[n] == 0)
            dfs(n);
    });

    return problems;
}

void
verifyOrDie(const Graph& g, const std::string& when)
{
    std::vector<std::string> problems = verifyGraph(g);
    if (!problems.empty())
        fatal("graph verification failed " + when + ": " + problems[0] +
              " (" + std::to_string(problems.size()) + " total)");
}

} // namespace cash
