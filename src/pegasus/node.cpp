#include "pegasus/node.h"

#include <sstream>

namespace cash {

const char*
vtName(VT vt)
{
    switch (vt) {
      case VT::Word: return "word";
      case VT::Pred: return "pred";
      case VT::Token: return "token";
    }
    return "?";
}

const char*
nodeKindName(NodeKind k)
{
    switch (k) {
      case NodeKind::Const: return "const";
      case NodeKind::Param: return "param";
      case NodeKind::Arith: return "arith";
      case NodeKind::Mux: return "mux";
      case NodeKind::Merge: return "merge";
      case NodeKind::Eta: return "eta";
      case NodeKind::Combine: return "combine";
      case NodeKind::InitialToken: return "init-token";
      case NodeKind::Load: return "load";
      case NodeKind::Store: return "store";
      case NodeKind::Call: return "call";
      case NodeKind::Return: return "return";
      case NodeKind::TokenGen: return "tokengen";
    }
    return "?";
}

int
Node::numOutputs() const
{
    switch (kind) {
      case NodeKind::Load:
      case NodeKind::Call:
        return 2;
      case NodeKind::Return:
        return 0;
      default:
        return 1;
    }
}

VT
Node::outputType(int port) const
{
    switch (kind) {
      case NodeKind::Load:
      case NodeKind::Call:
        return port == 0 ? VT::Word : VT::Token;
      case NodeKind::Store:
      case NodeKind::Combine:
      case NodeKind::InitialToken:
      case NodeKind::TokenGen:
        return VT::Token;
      default:
        return type;
    }
}

int
Node::tokenOutPort() const
{
    switch (kind) {
      case NodeKind::Load:
      case NodeKind::Call:
        return 1;
      case NodeKind::Store:
      case NodeKind::Combine:
      case NodeKind::InitialToken:
      case NodeKind::TokenGen:
        return 0;
      case NodeKind::Merge:
      case NodeKind::Eta:
      case NodeKind::Mux:
        return type == VT::Token ? 0 : -1;
      default:
        return -1;
    }
}

int
Node::tokenInIndex() const
{
    switch (kind) {
      case NodeKind::Load:
      case NodeKind::Store:
      case NodeKind::Call:
      case NodeKind::Return:
      case NodeKind::TokenGen:
        return 1;
      default:
        return -1;
    }
}

int
Node::predInIndex() const
{
    switch (kind) {
      case NodeKind::Load:
      case NodeKind::Store:
      case NodeKind::Call:
      case NodeKind::Return:
      case NodeKind::TokenGen:
        return 0;
      case NodeKind::Eta:
        return 1;
      default:
        return -1;
    }
}

std::string
Node::str() const
{
    std::ostringstream os;
    os << "n" << id << ":" << nodeKindName(kind);
    if (kind == NodeKind::Arith)
        os << "." << opName(op);
    if (kind == NodeKind::Const)
        os << "(" << constValue << ")";
    if (kind == NodeKind::Param)
        os << "(#" << paramIndex << ")";
    if (kind == NodeKind::TokenGen)
        os << "(" << tkCount << ")";
    if (kind == NodeKind::Call && callee)
        os << "(" << callee->name << ")";
    if (isMemoryAccess())
        os << size << " rw" << rwSet.str() << " part" << partition;
    os << " @hb" << hyperblock;
    os << " [";
    for (int i = 0; i < numInputs(); i++) {
        if (i)
            os << ", ";
        const PortRef& in = inputs_[i];
        if (!in.valid()) {
            os << "?";
        } else {
            os << "n" << in.node->id;
            if (in.port)
                os << "." << in.port;
            if (backEdge_[i])
                os << "^";
        }
    }
    os << "]";
    return os.str();
}

} // namespace cash
