/**
 * @file
 * Construction of Pegasus graphs from the CFG IR (paper §3).
 *
 * Per function the builder:
 *  1. forms hyperblocks and computes path predicates (PSSA);
 *  2. converts scalar code to dataflow nodes, inserting decoded muxes
 *     at joins inside hyperblocks;
 *  3. creates eta/merge nodes to stitch hyperblocks together and to
 *     carry values (and memory tokens) around loops;
 *  4. inserts token edges between memory operations following the
 *     synchronization-insertion algorithm of §3.3, with one token ring
 *     per memory partition, and transitively reduces the token graph
 *     (§3.4 invariant).
 */
#ifndef CASH_PEGASUS_BUILDER_H
#define CASH_PEGASUS_BUILDER_H

#include <memory>
#include <vector>

#include "cfg/cfg.h"
#include "frontend/ast.h"
#include "frontend/layout.h"
#include "pegasus/graph.h"

namespace cash {

/** Options controlling construction precision. */
struct BuildOptions
{
    /**
     * When false, ignore read/write sets during token insertion and
     * link all memory operations into a single program-order token
     * chain (the "coarse" initial representation; §4's starting point
     * and the unoptimized baseline of Figure 19).
     */
    bool usePointsTo = true;
    /**
     * Consume the per-call-site effect stamps left by the
     * interprocedural MOD/REF analysis (analysis/modref.h): call
     * nodes carry their resolved read/write sets into the token
     * insertion's conflict screen instead of Top, so disjoint
     * cross-call accesses never get a direct ordering edge.  Only
     * effective when usePointsTo is also on and the stamps are valid.
     */
    bool interprocEffects = false;
};

/** Build Pegasus graphs for every function of @p cfg. */
std::vector<std::unique_ptr<Graph>> buildPegasus(
    const CfgProgram& cfg, const Program& program,
    const MemoryLayout& layout, const BuildOptions& options = {});

/** Build only @p fn. */
std::unique_ptr<Graph> buildFunctionGraph(const CfgFunction& fn,
                                          const CfgProgram& cfg,
                                          const MemoryLayout& layout,
                                          const BuildOptions& options);

} // namespace cash

#endif // CASH_PEGASUS_BUILDER_H
