#include "pegasus/reachability.h"

#include <vector>

namespace cash {

const std::set<const Node*>&
ReachabilityCache::reachableFrom(const Node* from)
{
    auto it = memo_.find(from);
    if (it != memo_.end())
        return it->second;

    std::set<const Node*>& out = memo_[from];
    std::vector<const Node*> work{from};
    while (!work.empty()) {
        const Node* cur = work.back();
        work.pop_back();
        if (out.count(cur))
            continue;
        out.insert(cur);
        for (const Use& u : cur->uses()) {
            if (u.user->dead)
                continue;
            if (u.user->inputIsBackEdge(u.index))
                continue;
            if (!out.count(u.user))
                work.push_back(u.user);
        }
    }
    return out;
}

bool
ReachabilityCache::reaches(const Node* from, const Node* to)
{
    return reachableFrom(from).count(to) != 0;
}

} // namespace cash
