/**
 * @file
 * The Pegasus graph: node ownership and the mutation API used by the
 * builder and every optimization pass.
 */
#ifndef CASH_PEGASUS_GRAPH_H
#define CASH_PEGASUS_GRAPH_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pegasus/node.h"

namespace cash {

/** Static description of one hyperblock in a graph. */
struct HbInfo
{
    int id = -1;
    bool isLoop = false;      ///< Has a back edge onto itself.
    int loopDepth = 0;
    /** Ids of hyperblocks this one may transfer control to. */
    std::vector<int> successors;
};

/**
 * A Pegasus graph for one procedure.
 */
class Graph
{
  public:
    std::string name;
    const FuncDecl* decl = nullptr;
    int numParams = 0;
    bool hasFrame = false;     ///< Extra frame-base input after params.
    uint32_t frameBytes = 0;
    std::vector<HbInfo> hyperblocks;

    // Distinguished nodes.
    std::vector<Node*> paramNodes;   ///< Params (+ frame base last).
    Node* initialToken = nullptr;
    std::vector<Node*> returnNodes;

    /** Number of memory partitions (token rings) in this procedure. */
    int numPartitions = 0;
    /** Token-ring merge node per (hyperblock, partition); builder-set,
     *  maintained by the loop-pipelining passes. */
    std::map<std::pair<int, int>, Node*> ringMerge;

    // -----------------------------------------------------------------
    // Construction
    // -----------------------------------------------------------------

    Node* newNode(NodeKind kind, VT type, int hyperblock);
    Node* newConst(int64_t value, VT type, int hyperblock);
    Node* newArith(Op op, PortRef a, PortRef b, int hyperblock,
                   VT type = VT::Word);
    Node* newArith1(Op op, PortRef a, int hyperblock,
                    VT type = VT::Word);

    /** Convenience predicate constants. */
    Node* truePred(int hyperblock);
    Node* falsePred(int hyperblock);

    // -----------------------------------------------------------------
    // Mutation (keeps use lists consistent)
    // -----------------------------------------------------------------

    /** Append an input to @p n. */
    void addInput(Node* n, PortRef v, bool backEdge = false);

    /** Replace input @p index of @p n with @p v. */
    void setInput(Node* n, int index, PortRef v);

    /** Remove input @p index of @p n (shifts the rest down). */
    void removeInput(Node* n, int index);

    /** Remove a mu-merge's decider input (when its back inputs are
     *  gone and it degenerates to a plain merge). */
    void removeDecider(Node* merge);

    /** Redirect every use of @p from to @p to. */
    void replaceAllUses(PortRef from, PortRef to);

    /**
     * Mark @p n dead and detach all its inputs.  The node must have no
     * remaining uses.
     */
    void erase(Node* n);

    /** Drop dead nodes from the node list (invalidates ids order). */
    void compact();

    // -----------------------------------------------------------------
    // Snapshot / restore (pass isolation)
    // -----------------------------------------------------------------

    /**
     * Deep-copy the graph: every node slot (live and dead) is
     * replicated in order with identical ids, inputs, back-edge flags
     * and use-list ordering, and all distinguished-node pointers
     * (params, initial token, returns, ring merges) are remapped.
     * The pass manager snapshots a function before each pass and
     * move-assigns the snapshot back on rollback; the copy is exact,
     * so a rolled-back graph is indistinguishable from one the failed
     * pass never touched.
     */
    std::unique_ptr<Graph> clone() const;

    // -----------------------------------------------------------------
    // Inspection
    // -----------------------------------------------------------------

    /** All live nodes. */
    std::vector<Node*> liveNodes() const;

    /** Count of live nodes. */
    int numLive() const;

    /** Run @p fn over every live node. */
    void forEach(const std::function<void(Node*)>& fn) const;

    /** Total number of node slots (including dead). */
    size_t size() const { return nodes_.size(); }
    Node* node(size_t i) const { return nodes_[i].get(); }

    /**
     * The set of memory-token sources that feed @p n's token input,
     * looking through Combine chains.  Returns the side-effect nodes
     * (or ring merges / token generators / initial token) found.
     */
    std::vector<PortRef> tokenSources(const Node* n) const;

    /**
     * Rewire the consumers of a token output so that erasing a memory
     * op keeps the token graph connected: every consumer of
     * @p victim's token output instead consumes @p replacement.
     */
    void bypassToken(Node* victim, PortRef replacement);

  private:
    std::vector<std::unique_ptr<Node>> nodes_;
    void unuse(Node* producer, Node* user, int index);
};

} // namespace cash

#endif // CASH_PEGASUS_GRAPH_H
