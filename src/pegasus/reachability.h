/**
 * @file
 * Forward reachability in a Pegasus graph, ignoring loop back edges.
 *
 * The paper's optimizations guard against creating cycles with "a
 * reachability computation in the Pegasus DAG which ignores the
 * back-edges", cached so a batch of rewrites amortizes to linear cost
 * (§5).
 */
#ifndef CASH_PEGASUS_REACHABILITY_H
#define CASH_PEGASUS_REACHABILITY_H

#include <map>
#include <set>

#include "pegasus/graph.h"

namespace cash {

class ReachabilityCache
{
  public:
    explicit ReachabilityCache(const Graph& g) : g_(g) {}

    /**
     * Can a value produced by @p from flow (transitively, through any
     * ports, skipping back edges) into @p to?  Reflexive.
     */
    bool reaches(const Node* from, const Node* to);

    /** Drop all cached sets after a graph mutation. */
    void invalidate() { memo_.clear(); }

  private:
    const std::set<const Node*>& reachableFrom(const Node* from);

    const Graph& g_;
    std::map<const Node*, std::set<const Node*>> memo_;
};

} // namespace cash

#endif // CASH_PEGASUS_REACHABILITY_H
