#include "pegasus/builder.h"

#include <algorithm>
#include <map>

#include "cfg/dominators.h"
#include "cfg/hyperblock.h"
#include "cfg/liveness.h"
#include "cfg/loops.h"
#include "analysis/points_to.h"
#include "support/diagnostics.h"

namespace cash {

namespace {

/**
 * Builds the Pegasus graph of one function.
 */
class GraphBuilder
{
  public:
    GraphBuilder(const CfgFunction& fn, const CfgProgram& cfg,
                 const MemoryLayout& layout, const BuildOptions& opts)
        : fn_(fn), cfg_(cfg), layout_(layout), opts_(opts),
          dom_(fn), loops_(fn, dom_), hbp_(fn, dom_, loops_),
          live_(fn)
    {
    }

    std::unique_ptr<Graph>
    build()
    {
        g_ = std::make_unique<Graph>();
        g_->name = fn_.decl->name;
        g_->decl = fn_.decl;
        g_->numParams = fn_.numParams;
        g_->hasFrame = fn_.frameBaseReg >= 0;
        g_->frameBytes = layout_.frameSize(fn_.decl);

        entryHb_ = hbp_.hbOf(fn_.entry);

        if (opts_.usePointsTo) {
            parts_ = computePartitions(fn_, cfg_.oracle);
        } else {
            parts_.numPartitions = 1;
            parts_.memOpPartition.assign(fn_.numMemOps, 0);
        }
        g_->numPartitions = parts_.numPartitions;

        // Distinguished inputs.
        for (int p = 0; p < fn_.numParams; p++) {
            Node* n = g_->newNode(NodeKind::Param, VT::Word, entryHb_);
            n->paramIndex = p;
            g_->paramNodes.push_back(n);
        }
        if (g_->hasFrame) {
            Node* n = g_->newNode(NodeKind::Param, VT::Word, entryHb_);
            n->paramIndex = fn_.numParams;
            g_->paramNodes.push_back(n);
        }
        g_->initialToken =
            g_->newNode(NodeKind::InitialToken, VT::Token, entryHb_);

        createHbInfosAndMerges();
        for (const Hyperblock& hb : hbp_.hyperblocks())
            processHyperblock(hb);
        attachDeciders();

        return std::move(g_);
    }

  private:
    // =================================================================
    // Merges / hyperblock scaffolding
    // =================================================================

    void
    createHbInfosAndMerges()
    {
        for (const Hyperblock& hb : hbp_.hyperblocks()) {
            HbInfo info;
            info.id = hb.id;
            info.isLoop = hb.isLoop;
            info.loopDepth = hb.loopDepth;
            for (const HbExit& e : hb.exits)
                if (std::find(info.successors.begin(),
                              info.successors.end(),
                              e.targetHb) == info.successors.end())
                    info.successors.push_back(e.targetHb);
            g_->hyperblocks.push_back(info);

            bool hasIncoming = !hb.incoming.empty();
            if (!hasIncoming) {
                CASH_ASSERT(hb.id == entryHb_,
                            "non-entry hyperblock without incoming edges");
                continue;
            }
            // Control merge: the activation pulse of the hyperblock
            // (the paper's merge nodes "accepting control", Figure 2).
            // It carries the constant-true predicate once per
            // activation, giving every block predicate — and with it
            // every eta and side-effect — a dynamic trigger even when
            // all data in the hyperblock is constant.
            {
                Node* cm = g_->newNode(NodeKind::Merge, VT::Pred, hb.id);
                ctrlMerge_[hb.id] = cm;
                if (hb.id == entryHb_)
                    g_->addInput(cm, {constNode(hb.id, 1, VT::Pred), 0});
            }
            // Scalar merges for every register live into the header.
            for (int reg : live_.liveIn(hb.header)) {
                Node* m = g_->newNode(NodeKind::Merge, VT::Word, hb.id);
                scalarMerge_[{hb.id, reg}] = m;
                if (hb.id == entryHb_)
                    g_->addInput(m, entryValueOf(reg));
            }
            // One token-ring merge per memory partition.
            for (int p = 0; p < parts_.numPartitions; p++) {
                Node* m = g_->newNode(NodeKind::Merge, VT::Token, hb.id);
                g_->ringMerge[{hb.id, p}] = m;
                if (hb.id == entryHb_)
                    g_->addInput(m, {g_->initialToken, 0});
            }
        }
    }

    /** Function-entry value of a register (params or zero). */
    PortRef
    entryValueOf(int reg)
    {
        if (reg < fn_.numParams)
            return {g_->paramNodes[reg], 0};
        if (reg == fn_.frameBaseReg)
            return {g_->paramNodes[fn_.numParams], 0};
        return {constNode(entryHb_, 0, VT::Word), 0};
    }

    // =================================================================
    // Small node factories with folding
    // =================================================================

    Node*
    constNode(int hb, int64_t v, VT vt)
    {
        auto key = std::make_tuple(hb, v, vt);
        auto it = constCache_.find(key);
        if (it != constCache_.end())
            return it->second;
        Node* n = g_->newConst(v, vt, hb);
        constCache_[key] = n;
        return n;
    }

    bool
    isConstPred(PortRef p, int64_t* out) const
    {
        if (p.node->kind == NodeKind::Const) {
            *out = p.node->constValue;
            return true;
        }
        return false;
    }

    PortRef
    predAnd(PortRef a, PortRef b, int hb)
    {
        int64_t v;
        if (isConstPred(a, &v))
            return v ? b : a;
        if (isConstPred(b, &v))
            return v ? a : b;
        if (a == b)
            return a;
        return {g_->newArith(Op::And, a, b, hb, VT::Pred), 0};
    }

    PortRef
    predOr(PortRef a, PortRef b, int hb)
    {
        int64_t v;
        if (isConstPred(a, &v))
            return v ? a : b;
        if (isConstPred(b, &v))
            return v ? b : a;
        if (a == b)
            return a;
        return {g_->newArith(Op::Or, a, b, hb, VT::Pred), 0};
    }

    PortRef
    predNot(PortRef a, int hb)
    {
        int64_t v;
        if (isConstPred(a, &v))
            return {constNode(hb, v ? 0 : 1, VT::Pred), 0};
        if (a.node->kind == NodeKind::Arith &&
            a.node->op == Op::NotBool)
            return a.node->input(0);
        return {g_->newArith1(Op::NotBool, a, hb, VT::Pred), 0};
    }

    /** Convert a Word value into a predicate (v != 0). */
    PortRef
    boolify(PortRef v, int hb)
    {
        if (v.node->kind == NodeKind::Const)
            return {constNode(hb, v.node->constValue != 0, VT::Pred), 0};
        if (v.node->kind == NodeKind::Arith && opIsCompare(v.node->op)) {
            // Recreate the comparison as a predicate-typed node.
            auto key = std::make_pair(v.node, 0);
            auto it = predView_.find(key);
            if (it != predView_.end())
                return {it->second, 0};
            Node* n = g_->newArith(v.node->op, v.node->input(0),
                                   v.node->input(1), hb, VT::Pred);
            predView_[key] = n;
            return {n, 0};
        }
        return {g_->newArith(Op::Ne, v, {constNode(hb, 0, VT::Word), 0},
                             hb, VT::Pred),
                0};
    }

    // =================================================================
    // Per-hyperblock processing
    // =================================================================

    struct TOp
    {
        Node* node = nullptr;
        int block = -1;
        int order = -1;
        bool isRead = false;
        LocationSet rw;
        int part = -1;  ///< -1 = touches every partition (call/return).
    };

    void
    processHyperblock(const Hyperblock& hb)
    {
        blockPred_.clear();
        outMap_.clear();
        inMemo_.clear();
        tops_.clear();
        curHb_ = &hb;

        // Phase 1: scalar dataflow + memory op creation.
        for (int b : hb.blocks) {
            computeBlockPred(b);
            processBlock(b);
        }
        // Phase 2: token wiring.
        wireTokens(hb);
        // Phase 3: exits.
        processExits(hb);
    }

    void
    computeBlockPred(int b)
    {
        const Hyperblock& hb = *curHb_;
        if (b == hb.header) {
            auto cm = ctrlMerge_.find(hb.id);
            blockPred_[b] = cm != ctrlMerge_.end()
                                ? PortRef{cm->second, 0}
                                : PortRef{constNode(hb.id, 1, VT::Pred),
                                          0};
            return;
        }
        PortRef acc{};
        for (int p : fn_.block(b)->preds) {
            if (hbp_.hbOf(p) != hb.id || p == b)
                continue;
            if (!hb.blockSet.count(p))
                continue;
            PortRef pathPred = edgePred(p, b);
            acc = acc.valid() ? predOr(acc, pathPred, hb.id) : pathPred;
        }
        CASH_ASSERT(acc.valid(), "block without in-hyperblock preds");
        blockPred_[b] = acc;
    }

    /** Predicate of CFG edge p→b: blockPred(p) ∧ branch condition. */
    PortRef
    edgePred(int p, int b)
    {
        const Terminator& t = fn_.block(p)->term;
        PortRef bp = blockPred_.at(p);
        if (t.kind == Terminator::Kind::Jump)
            return bp;
        CASH_ASSERT(t.kind == Terminator::Kind::CondBranch,
                    "edge from non-branch block");
        if (t.target0 == t.target1)
            return bp;
        PortRef cond = boolify(operandValue(p, t.cond), curHb_->id);
        if (t.target0 == b)
            return predAnd(bp, cond, curHb_->id);
        CASH_ASSERT(t.target1 == b, "edge target mismatch");
        return predAnd(bp, predNot(cond, curHb_->id), curHb_->id);
    }

    // ------------------------------------------------------------------
    // Value lookup with mux insertion
    // ------------------------------------------------------------------

    /** Value of @p reg at the end of block @p b. */
    PortRef
    lookup(int b, int reg)
    {
        auto& om = outMap_[b];
        auto it = om.find(reg);
        if (it != om.end())
            return it->second;
        return inValue(b, reg);
    }

    /** Value of @p reg at the entry of block @p b. */
    PortRef
    inValue(int b, int reg)
    {
        auto key = std::make_pair(b, reg);
        auto memo = inMemo_.find(key);
        if (memo != inMemo_.end())
            return memo->second;

        const Hyperblock& hb = *curHb_;
        PortRef result;
        if (b == hb.header) {
            result = headerValue(reg);
        } else {
            // Gather reaching values from in-hyperblock predecessors.
            std::vector<std::pair<PortRef, PortRef>> arms;  // (pred, val)
            bool allSame = true;
            PortRef first{};
            for (int p : fn_.block(b)->preds) {
                if (hbp_.hbOf(p) != hb.id || !hb.blockSet.count(p))
                    continue;
                PortRef v = lookup(p, reg);
                if (!first.valid())
                    first = v;
                else if (v != first)
                    allSame = false;
                arms.push_back({edgePred(p, b), v});
            }
            CASH_ASSERT(!arms.empty(), "no reaching definitions");
            if (allSame) {
                result = first;
            } else {
                Node* mux = g_->newNode(NodeKind::Mux, VT::Word, hb.id);
                for (auto& [p, v] : arms) {
                    g_->addInput(mux, p);
                    g_->addInput(mux, v);
                }
                result = {mux, 0};
            }
        }
        inMemo_[key] = result;
        return result;
    }

    PortRef
    headerValue(int reg)
    {
        const Hyperblock& hb = *curHb_;
        auto it = scalarMerge_.find({hb.id, reg});
        if (it != scalarMerge_.end())
            return {it->second, 0};
        if (hb.id == entryHb_)
            return entryValueOf(reg);
        // Not live into the header: a definition must precede any use,
        // but keep construction total with a zero.
        return {constNode(hb.id, 0, VT::Word), 0};
    }

    PortRef
    operandValue(int b, const Operand& o)
    {
        if (o.isConst())
            return {constNode(curHb_->id, o.cval, VT::Word), 0};
        CASH_ASSERT(o.isReg(), "evaluating empty operand");
        return lookup(b, o.reg);
    }

    // ------------------------------------------------------------------
    // Instruction processing
    // ------------------------------------------------------------------

    void
    processBlock(int b)
    {
        const Hyperblock& hb = *curHb_;
        for (const Instr& i : fn_.block(b)->instrs) {
            switch (i.kind) {
              case InstrKind::Bin: {
                Node* n = g_->newArith(i.op, operandValue(b, i.a),
                                       operandValue(b, i.b), hb.id);
                outMap_[b][i.dst] = {n, 0};
                break;
              }
              case InstrKind::Un: {
                Node* n = g_->newArith1(i.op, operandValue(b, i.a),
                                        hb.id);
                outMap_[b][i.dst] = {n, 0};
                break;
              }
              case InstrKind::Copy:
                outMap_[b][i.dst] = operandValue(b, i.a);
                break;
              case InstrKind::Load: {
                Node* n = g_->newNode(NodeKind::Load, VT::Word, hb.id);
                n->size = i.size;
                n->signExtend = i.signExtend;
                n->rwSet = opts_.usePointsTo ? i.rwSet
                                             : LocationSet::top();
                n->partition =
                    i.memId >= 0 ? parts_.memOpPartition[i.memId] : 0;
                n->memId = i.memId;
                n->loc = i.loc;
                g_->addInput(n, blockPred_.at(b));
                g_->addInput(n, {g_->initialToken, 0});  // placeholder
                g_->addInput(n, operandValue(b, i.addr));
                outMap_[b][i.dst] = {n, 0};
                tops_.push_back({n, b, static_cast<int>(tops_.size()),
                                 true, n->rwSet, n->partition});
                break;
              }
              case InstrKind::Store: {
                Node* n = g_->newNode(NodeKind::Store, VT::Token, hb.id);
                n->size = i.size;
                n->rwSet = opts_.usePointsTo ? i.rwSet
                                             : LocationSet::top();
                n->partition =
                    i.memId >= 0 ? parts_.memOpPartition[i.memId] : 0;
                n->memId = i.memId;
                n->loc = i.loc;
                g_->addInput(n, blockPred_.at(b));
                g_->addInput(n, {g_->initialToken, 0});  // placeholder
                g_->addInput(n, operandValue(b, i.addr));
                g_->addInput(n, operandValue(b, i.value));
                tops_.push_back({n, b, static_cast<int>(tops_.size()),
                                 false, n->rwSet, n->partition});
                break;
              }
              case InstrKind::Call: {
                Node* n = g_->newNode(NodeKind::Call, VT::Word, hb.id);
                n->callee = i.callee;
                n->callReads = i.callReads;
                n->callWrites = i.callWrites;
                n->callEffectsValid = i.callEffectsValid;
                // With valid MOD/REF stamps the call enters the
                // conflict screen with its resolved effect sets (and
                // counts as a reader when its callee writes nothing);
                // otherwise it keeps the conservative Top.
                const bool refined = opts_.interprocEffects &&
                                     opts_.usePointsTo &&
                                     i.callEffectsValid;
                LocationSet rw = LocationSet::top();
                if (refined) {
                    rw = i.callReads;
                    rw.unionWith(i.callWrites);
                }
                n->rwSet = rw;
                n->partition = -1;
                n->loc = i.loc;
                g_->addInput(n, blockPred_.at(b));
                g_->addInput(n, {g_->initialToken, 0});  // placeholder
                for (const Operand& a : i.args)
                    g_->addInput(n, operandValue(b, a));
                if (i.dst >= 0)
                    outMap_[b][i.dst] = {n, 0};
                tops_.push_back({n, b, static_cast<int>(tops_.size()),
                                 refined && i.callWrites.empty(), rw,
                                 -1});
                break;
              }
            }
        }
        // Return terminators become Return sink nodes.
        const Terminator& t = fn_.block(b)->term;
        if (t.kind == Terminator::Kind::Return) {
            Node* n = g_->newNode(NodeKind::Return, VT::Word, hb.id);
            g_->addInput(n, blockPred_.at(b));
            g_->addInput(n, {g_->initialToken, 0});  // placeholder
            if (!t.retValue.isNone())
                g_->addInput(n, operandValue(b, t.retValue));
            g_->returnNodes.push_back(n);
            tops_.push_back({n, b, static_cast<int>(tops_.size()),
                             false, LocationSet::top(), -1});
        }
    }

    // ------------------------------------------------------------------
    // Token wiring (paper §3.3 + §3.4)
    // ------------------------------------------------------------------

    /** Token source entering this hyperblock for partition @p p. */
    PortRef
    entryTokenSource(const Hyperblock& hb, int p)
    {
        auto it = g_->ringMerge.find({hb.id, p});
        if (it != g_->ringMerge.end())
            return {it->second, 0};
        CASH_ASSERT(hb.id == entryHb_, "missing ring merge");
        return {g_->initialToken, 0};
    }

    /** Do ops @p a and @p b need an ordering edge? */
    bool
    conflicts(const TOp& a, const TOp& b) const
    {
        if (a.isRead && b.isRead)
            return false;
        if (!opts_.usePointsTo)
            return true;
        return cfg_.oracle.mayOverlap(a.rw, b.rw);
    }

    /** Does op @p o touch partition @p p? */
    bool
    touchesPartition(const TOp& o, int p) const
    {
        return o.part == -1 || o.part == p;
    }

    void
    wireTokens(const Hyperblock& hb)
    {
        int k = static_cast<int>(tops_.size());
        int np = parts_.numPartitions;
        // DAG nodes: [0,k) real ops, [k,k+np) entry virtuals,
        // [k+np,k+2np) exit virtuals.
        int n = k + 2 * np;
        std::vector<std::vector<char>> edge(n, std::vector<char>(n, 0));

        bool hasExits = !hb.exits.empty();
        // Which blocks can reach a (non-return) exit edge.
        auto reachesExit = [&](int block) {
            for (const HbExit& e : hb.exits)
                if (hbp_.reaches(block, e.srcBlock))
                    return true;
            return false;
        };

        auto hasPath = [&](const TOp& a, const TOp& b) {
            if (a.block == b.block)
                return a.order < b.order;
            return hbp_.reaches(a.block, b.block);
        };

        for (int i = 0; i < k; i++) {
            for (int j = i + 1; j < k; j++)
                if (hasPath(tops_[i], tops_[j]) &&
                    conflicts(tops_[i], tops_[j]))
                    edge[i][j] = 1;
        }
        for (int p = 0; p < np; p++) {
            int ev = k + p;
            int xv = k + np + p;
            for (int i = 0; i < k; i++) {
                if (!touchesPartition(tops_[i], p))
                    continue;
                edge[ev][i] = 1;
                if (hasExits && tops_[i].node->numOutputs() > 0 &&
                    reachesExit(tops_[i].block))
                    edge[i][xv] = 1;
            }
            if (hasExits)
                edge[ev][xv] = 1;
        }

        // Transitive reduction: drop every edge implied by a longer
        // path (the §3.4 invariant).
        std::vector<std::vector<char>> reach = edge;
        // Floyd-Warshall-style closure over the small DAG.
        for (int m = 0; m < n; m++)
            for (int i = 0; i < n; i++)
                if (reach[i][m])
                    for (int j = 0; j < n; j++)
                        if (reach[m][j])
                            reach[i][j] = 1;
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) {
                if (!edge[i][j])
                    continue;
                // Is there an intermediate m with i→m ∧ m→j?
                for (int m = 0; m < n; m++) {
                    if (m == i || m == j)
                        continue;
                    if ((edge[i][m] || reach[i][m]) && reach[m][j]) {
                        edge[i][j] = 0;
                        break;
                    }
                }
            }
        }

        // Materialize token inputs.
        auto tokenOutOf = [&](int idx) -> PortRef {
            if (idx < k) {
                Node* nn = tops_[idx].node;
                int port = nn->tokenOutPort();
                CASH_ASSERT(port >= 0, "token from sink node");
                return {nn, port};
            }
            CASH_ASSERT(idx < k + np, "token from exit virtual");
            return entryTokenSource(hb, idx - k);
        };

        auto combineOf = [&](const std::vector<PortRef>& srcs,
                             int hbId) -> PortRef {
            CASH_ASSERT(!srcs.empty(), "op without token source");
            if (srcs.size() == 1)
                return srcs[0];
            Node* c = g_->newNode(NodeKind::Combine, VT::Token, hbId);
            for (const PortRef& s : srcs)
                g_->addInput(c, s);
            return {c, 0};
        };

        for (int j = 0; j < k; j++) {
            std::vector<PortRef> srcs;
            for (int i = 0; i < n; i++) {
                if (i == j || !edge[i][j])
                    continue;
                PortRef t = tokenOutOf(i);
                if (std::find(srcs.begin(), srcs.end(), t) == srcs.end())
                    srcs.push_back(t);
            }
            Node* nn = tops_[j].node;
            int ti = nn->tokenInIndex();
            g_->setInput(nn, ti, combineOf(srcs, hb.id));
        }

        // Exit token state per partition.
        exitToken_.assign(np, PortRef{});
        if (hasExits) {
            for (int p = 0; p < np; p++) {
                int xv = k + np + p;
                std::vector<PortRef> srcs;
                for (int i = 0; i < k + np; i++) {
                    if (!edge[i][xv])
                        continue;
                    PortRef t = tokenOutOf(i);
                    if (std::find(srcs.begin(), srcs.end(), t) ==
                        srcs.end())
                        srcs.push_back(t);
                }
                exitToken_[p] = combineOf(srcs, hb.id);
            }
        }
    }

    // ------------------------------------------------------------------
    // Hyperblock exits
    // ------------------------------------------------------------------

    /**
     * Deliver @p value into @p targetMerge whenever the exit edge with
     * predicate @p predE is taken.  Normally an eta; constant-true
     * predicates (possible only in the single-activation entry
     * hyperblock) wire directly, and constant-false edges vanish.
     */
    void
    addEdgeDelivery(Node* targetMerge, PortRef value, PortRef predE,
                    bool isBack, int srcHb, VT vt)
    {
        int64_t c;
        if (isConstPred(predE, &c)) {
            if (c == 0)
                return;  // edge never taken
            g_->addInput(targetMerge, value, isBack);
            return;
        }
        Node* eta = g_->newNode(NodeKind::Eta, vt, srcHb);
        g_->addInput(eta, value);
        g_->addInput(eta, predE);
        g_->addInput(targetMerge, {eta, 0}, isBack);
    }

    /**
     * The loop-continuation decider of hyperblock @p hb: true on
     * activations whose control stays inside @p hb's innermost loop
     * (including the self back edge), false when the loop exits.
     * Recorded here; attachDeciders() wires it to every mu-merge once
     * all hyperblocks have contributed their back-edge inputs.
     */
    void
    computeContinuePred(const Hyperblock& hb)
    {
        PortRef cont{};
        for (const HbExit& e : hb.exits) {
            bool staysInLoop = e.isBackEdge;
            if (!staysInLoop && hb.loopIndex >= 0)
                staysInLoop =
                    loops_.loops()[hb.loopIndex].blocks.count(
                        e.dstBlock) != 0;
            if (!staysInLoop)
                continue;
            PortRef p = exitEdgePred(e);
            cont = cont.valid() ? predOr(cont, p, hb.id) : p;
        }
        if (cont.valid())
            continuePred_[hb.id] = cont;
    }

    void
    attachDeciders()
    {
        g_->forEach([&](Node* m) {
            if (m->dead || m->kind != NodeKind::Merge)
                return;
            bool hasBack = false;
            for (int i = 0; i < m->numInputs(); i++)
                if (m->inputIsBackEdge(i))
                    hasBack = true;
            if (!hasBack)
                return;
            auto it = continuePred_.find(m->hyperblock);
            CASH_ASSERT(it != continuePred_.end(),
                        "mu-merge without a continue predicate");
            m->deciderIndex = m->numInputs();
            g_->addInput(m, it->second, /*backEdge=*/true);
        });
    }

    void
    processExits(const Hyperblock& hb)
    {
        computeContinuePred(hb);
        for (const HbExit& e : hb.exits) {
            PortRef predE = exitEdgePred(e);
            const Hyperblock& target = hbp_.hb(e.targetHb);
            // Control pulse.
            auto cm = ctrlMerge_.find(target.id);
            CASH_ASSERT(cm != ctrlMerge_.end(),
                        "exit into hyperblock without control merge");
            addEdgeDelivery(cm->second,
                            {constNode(hb.id, 1, VT::Pred), 0}, predE,
                            e.isBackEdge, hb.id, VT::Pred);
            // Scalar etas for registers the target has merges for.
            for (int reg : live_.liveIn(target.header)) {
                auto it = scalarMerge_.find({target.id, reg});
                if (it == scalarMerge_.end())
                    continue;
                addEdgeDelivery(it->second, lookup(e.srcBlock, reg),
                                predE, e.isBackEdge, hb.id, VT::Word);
            }
            // Token etas, one per partition ring.
            for (int p = 0; p < parts_.numPartitions; p++) {
                auto it = g_->ringMerge.find({target.id, p});
                CASH_ASSERT(it != g_->ringMerge.end(),
                            "target hyperblock lacks ring merge");
                addEdgeDelivery(it->second, exitToken_.at(p), predE,
                                e.isBackEdge, hb.id, VT::Token);
            }
        }
    }

    PortRef
    exitEdgePred(const HbExit& e)
    {
        const Terminator& t = fn_.block(e.srcBlock)->term;
        PortRef bp = blockPred_.at(e.srcBlock);
        if (t.kind == Terminator::Kind::Jump)
            return bp;
        CASH_ASSERT(t.kind == Terminator::Kind::CondBranch,
                    "exit from non-branch block");
        if (t.target0 == t.target1)
            return bp;
        PortRef cond =
            boolify(operandValue(e.srcBlock, t.cond), curHb_->id);
        if (t.target0 == e.dstBlock)
            return predAnd(bp, cond, curHb_->id);
        return predAnd(bp, predNot(cond, curHb_->id), curHb_->id);
    }

    // =================================================================

    const CfgFunction& fn_;
    const CfgProgram& cfg_;
    const MemoryLayout& layout_;
    BuildOptions opts_;

    DominatorTree dom_;
    LoopForest loops_;
    HyperblockPartition hbp_;
    Liveness live_;
    PartitionResult parts_;

    std::unique_ptr<Graph> g_;
    int entryHb_ = 0;

    std::map<std::pair<int, int>, Node*> scalarMerge_;
    std::map<int, Node*> ctrlMerge_;
    std::map<int, PortRef> continuePred_;
    std::map<std::tuple<int, int64_t, VT>, Node*> constCache_;
    std::map<std::pair<Node*, int>, Node*> predView_;

    // Per-hyperblock transient state.
    const Hyperblock* curHb_ = nullptr;
    std::map<int, PortRef> blockPred_;
    std::map<int, std::map<int, PortRef>> outMap_;
    std::map<std::pair<int, int>, PortRef> inMemo_;
    std::vector<TOp> tops_;
    std::vector<PortRef> exitToken_;
};

} // namespace

std::unique_ptr<Graph>
buildFunctionGraph(const CfgFunction& fn, const CfgProgram& cfg,
                   const MemoryLayout& layout, const BuildOptions& options)
{
    GraphBuilder b(fn, cfg, layout, options);
    return b.build();
}

std::vector<std::unique_ptr<Graph>>
buildPegasus(const CfgProgram& cfg, const Program& program,
             const MemoryLayout& layout, const BuildOptions& options)
{
    (void)program;
    std::vector<std::unique_ptr<Graph>> out;
    for (const auto& fn : cfg.functions)
        out.push_back(buildFunctionGraph(*fn, cfg, layout, options));
    return out;
}

} // namespace cash
