/**
 * @file
 * Sequential reference interpreter for Mini-C.
 *
 * Executes the AST directly, in program order, over the same memory
 * layout the dataflow simulator uses.  It is the golden model for
 * differential testing: any compiled/optimized configuration must
 * produce the same return value and final memory image.
 */
#ifndef CASH_BASELINE_INTERPRETER_H
#define CASH_BASELINE_INTERPRETER_H

#include <cstdint>
#include <string>
#include <vector>

#include "frontend/ast.h"
#include "frontend/layout.h"
#include "support/stats.h"

namespace cash {

/** Result of one interpreted invocation. */
struct InterpResult
{
    uint32_t returnValue = 0;
    int64_t dynamicLoads = 0;   ///< Memory loads executed.
    int64_t dynamicStores = 0;  ///< Memory stores executed.
    int64_t steps = 0;          ///< Statements/expressions evaluated.
};

/**
 * The interpreter.  One instance owns a memory image; multiple calls
 * mutate it cumulatively (like a real process).
 */
class Interpreter
{
  public:
    Interpreter(const Program& program, const MemoryLayout& layout);

    /**
     * Call function @p name with scalar @p args.
     * @throws FatalError on runtime errors (null deref, div by zero,
     *         step-limit exceeded).
     */
    InterpResult call(const std::string& name,
                      const std::vector<uint32_t>& args);

    /** Raw memory for final-state comparison. */
    const std::vector<uint8_t>& memory() const { return mem_; }
    std::vector<uint8_t>& memory() { return mem_; }

    /** Read a 32-bit word (for test assertions). */
    uint32_t loadWord(uint32_t addr) const;
    void storeWord(uint32_t addr, uint32_t value);

    /** Address of global object @p name. */
    uint32_t globalAddress(const std::string& name) const;

    /** Reset memory to the initial image. */
    void reset();

    /** Abort execution after this many steps (default 100M). */
    void setStepLimit(int64_t limit) { stepLimit_ = limit; }

  private:
    enum class Flow { Normal, Break, Continue, Return };

    struct Frame
    {
        const FuncDecl* func = nullptr;
        std::vector<uint32_t> regs;
        uint32_t frameBase = 0;
        uint32_t returnValue = 0;
    };

    struct LValue
    {
        bool isReg = false;
        int regId = -1;
        uint32_t addr = 0;
        int size = 4;
        bool isSigned = true;
    };

    uint32_t callFunction(const FuncDecl* f,
                          const std::vector<uint32_t>& args);
    Flow execStmt(const Stmt* s, Frame& fr);
    uint32_t evalExpr(const Expr* e, Frame& fr);
    LValue evalLValue(const Expr* e, Frame& fr);
    uint32_t readLValue(const LValue& lv, Frame& fr);
    void writeLValue(const LValue& lv, uint32_t v, Frame& fr);
    uint32_t loadMem(uint32_t addr, int size, bool isSigned);
    void storeMem(uint32_t addr, uint32_t value, int size);
    uint32_t objectAddress(const VarDecl* d, const Frame& fr) const;
    void step();
    void initLocal(const VarDecl* d, Frame& fr);

    const Program& prog_;
    const MemoryLayout& layout_;
    std::vector<uint8_t> mem_;
    uint32_t stackPtr_ = MemoryLayout::kStackTop;
    int64_t stepLimit_ = 100000000;
    int64_t steps_ = 0;
    int64_t loads_ = 0;
    int64_t stores_ = 0;
    int callDepth_ = 0;
};

} // namespace cash

#endif // CASH_BASELINE_INTERPRETER_H
