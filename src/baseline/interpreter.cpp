#include "baseline/interpreter.h"

#include "support/diagnostics.h"

namespace cash {

namespace {

/** Pointer element stride for p+i arithmetic. */
int64_t
pointeeSize(const TypePtr& t)
{
    TypePtr p = t;
    if (p->isArray())
        return p->element->sizeBytes();
    CASH_ASSERT(p->isPointer(), "pointer arithmetic on non-pointer");
    if (p->element->isArray())
        return p->element->sizeBytes();
    return p->element->sizeBytes();
}

bool
typeIsSigned(const TypePtr& t)
{
    return !t->isUnsignedInt() && !t->isPointer();
}

} // namespace

Interpreter::Interpreter(const Program& program, const MemoryLayout& layout)
    : prog_(program), layout_(layout)
{
    reset();
}

void
Interpreter::reset()
{
    mem_.assign(MemoryLayout::kMemorySize, 0);
    const std::vector<uint8_t>& img = layout_.globalImage();
    std::copy(img.begin(), img.end(),
              mem_.begin() + MemoryLayout::kGlobalBase);
    stackPtr_ = MemoryLayout::kStackTop;
    steps_ = loads_ = stores_ = 0;
    callDepth_ = 0;
}

void
Interpreter::step()
{
    if (++steps_ > stepLimit_)
        fatal("interpreter step limit exceeded (infinite loop?)");
}

uint32_t
Interpreter::loadWord(uint32_t addr) const
{
    CASH_ASSERT(addr + 4 <= mem_.size(), "loadWord out of range");
    return static_cast<uint32_t>(mem_[addr]) |
           (static_cast<uint32_t>(mem_[addr + 1]) << 8) |
           (static_cast<uint32_t>(mem_[addr + 2]) << 16) |
           (static_cast<uint32_t>(mem_[addr + 3]) << 24);
}

void
Interpreter::storeWord(uint32_t addr, uint32_t value)
{
    storeMem(addr, value, 4);
    stores_--;  // test helper: don't count as program activity
}

uint32_t
Interpreter::globalAddress(const std::string& name) const
{
    int id = layout_.findGlobal(name);
    if (id < 0)
        fatal("no such global: " + name);
    return layout_.object(id).address;
}

uint32_t
Interpreter::loadMem(uint32_t addr, int size, bool isSigned)
{
    if (addr == 0 || addr + size > mem_.size())
        fatal("load from invalid address " + std::to_string(addr));
    loads_++;
    uint32_t v = 0;
    for (int i = 0; i < size; i++)
        v |= static_cast<uint32_t>(mem_[addr + i]) << (8 * i);
    if (size == 1 && isSigned)
        v = static_cast<uint32_t>(static_cast<int32_t>(
            static_cast<int8_t>(v & 0xff)));
    return v;
}

void
Interpreter::storeMem(uint32_t addr, uint32_t value, int size)
{
    if (addr == 0 || addr + size > mem_.size())
        fatal("store to invalid address " + std::to_string(addr));
    stores_++;
    for (int i = 0; i < size; i++)
        mem_[addr + i] = static_cast<uint8_t>((value >> (8 * i)) & 0xff);
}

uint32_t
Interpreter::objectAddress(const VarDecl* d, const Frame& fr) const
{
    CASH_ASSERT(d->objectId >= 0, "variable has no memory object");
    const MemObject& obj = layout_.object(d->objectId);
    return obj.isGlobal ? obj.address : fr.frameBase + obj.address;
}

InterpResult
Interpreter::call(const std::string& name,
                  const std::vector<uint32_t>& args)
{
    const FuncDecl* f = prog_.findFunction(name);
    if (!f || !f->body)
        fatal("no function definition for '" + name + "'");
    int64_t loads0 = loads_, stores0 = stores_, steps0 = steps_;
    InterpResult r;
    r.returnValue = callFunction(f, args);
    r.dynamicLoads = loads_ - loads0;
    r.dynamicStores = stores_ - stores0;
    r.steps = steps_ - steps0;
    return r;
}

uint32_t
Interpreter::callFunction(const FuncDecl* f,
                          const std::vector<uint32_t>& args)
{
    if (++callDepth_ > 512)
        fatal("call depth limit exceeded");
    CASH_ASSERT(args.size() == f->params.size(), "bad argument count");

    Frame fr;
    fr.func = f;
    fr.regs.assign(f->numRegisterVars, 0);
    uint32_t frame = layout_.frameSize(f);
    if (frame) {
        if (stackPtr_ < frame + 0x1000)
            fatal("simulated stack overflow");
        stackPtr_ -= frame;
        fr.frameBase = stackPtr_;
    }

    for (size_t i = 0; i < args.size(); i++)
        fr.regs[f->params[i]->varId] = args[i];

    Flow flow = execStmt(f->body, fr);
    (void)flow;

    if (frame)
        stackPtr_ += frame;
    callDepth_--;
    return fr.returnValue;
}

void
Interpreter::initLocal(const VarDecl* d, Frame& fr)
{
    if (d->init) {
        uint32_t v = evalExpr(d->init, fr);
        if (d->inMemory) {
            storeMem(objectAddress(d, fr), v, d->type->accessSize());
        } else {
            fr.regs[d->varId] = v;
        }
    }
    if (!d->initList.empty()) {
        uint32_t base = objectAddress(d, fr);
        int esize = d->type->element->accessSize();
        for (size_t i = 0; i < d->initList.size(); i++) {
            uint32_t v = evalExpr(d->initList[i], fr);
            storeMem(base + static_cast<uint32_t>(i * esize), v, esize);
        }
    }
}

Interpreter::Flow
Interpreter::execStmt(const Stmt* s, Frame& fr)
{
    step();
    switch (s->kind) {
      case StmtKind::Expr:
        evalExpr(static_cast<const ExprStmt*>(s)->expr, fr);
        return Flow::Normal;
      case StmtKind::Decl:
        for (const VarDecl* d : static_cast<const DeclStmt*>(s)->decls)
            initLocal(d, fr);
        return Flow::Normal;
      case StmtKind::If: {
        auto* i = static_cast<const IfStmt*>(s);
        if (evalExpr(i->cond, fr))
            return execStmt(i->thenStmt, fr);
        if (i->elseStmt)
            return execStmt(i->elseStmt, fr);
        return Flow::Normal;
      }
      case StmtKind::While: {
        auto* w = static_cast<const WhileStmt*>(s);
        while (evalExpr(w->cond, fr)) {
            step();
            Flow fl = execStmt(w->body, fr);
            if (fl == Flow::Break)
                break;
            if (fl == Flow::Return)
                return fl;
        }
        return Flow::Normal;
      }
      case StmtKind::DoWhile: {
        auto* w = static_cast<const DoWhileStmt*>(s);
        do {
            step();
            Flow fl = execStmt(w->body, fr);
            if (fl == Flow::Break)
                break;
            if (fl == Flow::Return)
                return fl;
        } while (evalExpr(w->cond, fr));
        return Flow::Normal;
      }
      case StmtKind::For: {
        auto* f = static_cast<const ForStmt*>(s);
        if (f->init)
            execStmt(f->init, fr);
        while (!f->cond || evalExpr(f->cond, fr)) {
            step();
            Flow fl = execStmt(f->body, fr);
            if (fl == Flow::Break)
                break;
            if (fl == Flow::Return)
                return fl;
            if (f->step)
                evalExpr(f->step, fr);
        }
        return Flow::Normal;
      }
      case StmtKind::Return: {
        auto* r = static_cast<const ReturnStmt*>(s);
        if (r->value)
            fr.returnValue = evalExpr(r->value, fr);
        return Flow::Return;
      }
      case StmtKind::Break:
        return Flow::Break;
      case StmtKind::Continue:
        return Flow::Continue;
      case StmtKind::Block: {
        for (const Stmt* sub : static_cast<const BlockStmt*>(s)->stmts) {
            Flow fl = execStmt(sub, fr);
            if (fl != Flow::Normal)
                return fl;
        }
        return Flow::Normal;
      }
      case StmtKind::Empty:
        return Flow::Normal;
    }
    return Flow::Normal;
}

Interpreter::LValue
Interpreter::evalLValue(const Expr* e, Frame& fr)
{
    switch (e->kind) {
      case ExprKind::VarRef: {
        const VarDecl* d = static_cast<const VarRefExpr*>(e)->decl;
        LValue lv;
        if (d->inMemory) {
            lv.isReg = false;
            lv.addr = objectAddress(d, fr);
            lv.size = d->type->accessSize();
            lv.isSigned = typeIsSigned(d->type);
        } else {
            lv.isReg = true;
            lv.regId = d->varId;
        }
        return lv;
      }
      case ExprKind::Index: {
        auto* i = static_cast<const IndexExpr*>(e);
        uint32_t base = evalExpr(i->base, fr);
        uint32_t idx = evalExpr(i->index, fr);
        int64_t stride = e->type->isArray() ? e->type->sizeBytes()
                                            : e->type->accessSize();
        if (e->type->isArray())
            stride = e->type->sizeBytes();
        else
            stride = e->type->accessSize();
        LValue lv;
        lv.addr = base + static_cast<uint32_t>(
                             static_cast<int32_t>(idx) *
                             static_cast<int32_t>(stride));
        lv.size = e->type->accessSize();
        lv.isSigned = typeIsSigned(e->type);
        return lv;
      }
      case ExprKind::Deref: {
        auto* d = static_cast<const DerefExpr*>(e);
        LValue lv;
        lv.addr = evalExpr(d->pointer, fr);
        lv.size = e->type->accessSize();
        lv.isSigned = typeIsSigned(e->type);
        return lv;
      }
      default:
        fatalAt(e->loc, "expression is not an lvalue");
    }
}

uint32_t
Interpreter::readLValue(const LValue& lv, Frame& fr)
{
    if (lv.isReg)
        return fr.regs[lv.regId];
    return loadMem(lv.addr, lv.size, lv.isSigned);
}

void
Interpreter::writeLValue(const LValue& lv, uint32_t v, Frame& fr)
{
    if (lv.isReg)
        fr.regs[lv.regId] = v;
    else
        storeMem(lv.addr, v, lv.size);
}

uint32_t
Interpreter::evalExpr(const Expr* e, Frame& fr)
{
    step();
    switch (e->kind) {
      case ExprKind::IntLit:
        return static_cast<uint32_t>(
            static_cast<const IntLitExpr*>(e)->value);
      case ExprKind::StrLit: {
        const VarDecl* g = static_cast<const StrLitExpr*>(e)->object;
        return layout_.object(g->objectId).address;
      }
      case ExprKind::VarRef: {
        const VarDecl* d = static_cast<const VarRefExpr*>(e)->decl;
        if (d->type->isArray())
            return objectAddress(d, fr);  // decay to address
        if (d->inMemory)
            return loadMem(objectAddress(d, fr), d->type->accessSize(),
                           typeIsSigned(d->type));
        return fr.regs[d->varId];
      }
      case ExprKind::Unary: {
        auto* u = static_cast<const UnaryExpr*>(e);
        uint32_t v = evalExpr(u->operand, fr);
        switch (u->op) {
          case UnaryOp::Neg: return -v;
          case UnaryOp::Not: return v == 0;
          case UnaryOp::BitNot: return ~v;
          case UnaryOp::Plus: return v;
        }
        return 0;
      }
      case ExprKind::Binary: {
        auto* b = static_cast<const BinaryExpr*>(e);
        // Short-circuit forms first.
        if (b->op == BinaryOp::LogAnd)
            return evalExpr(b->lhs, fr) && evalExpr(b->rhs, fr);
        if (b->op == BinaryOp::LogOr)
            return evalExpr(b->lhs, fr) || evalExpr(b->rhs, fr);

        uint32_t l = evalExpr(b->lhs, fr);
        uint32_t r = evalExpr(b->rhs, fr);

        TypePtr lt = b->lhs->type, rt = b->rhs->type;
        bool ptrL = lt->isPointer() || lt->isArray();
        bool ptrR = rt->isPointer() || rt->isArray();

        if (b->op == BinaryOp::Add && (ptrL || ptrR)) {
            if (ptrL)
                return l + r * static_cast<uint32_t>(pointeeSize(lt));
            return r + l * static_cast<uint32_t>(pointeeSize(rt));
        }
        if (b->op == BinaryOp::Sub && ptrL) {
            if (ptrR) {
                return (l - r) / static_cast<uint32_t>(pointeeSize(lt));
            }
            return l - r * static_cast<uint32_t>(pointeeSize(lt));
        }

        bool sgn = typeIsSigned(e->type);
        bool cmpSigned = !(lt->isUnsignedInt() || rt->isUnsignedInt()) &&
                         !ptrL && !ptrR;
        int32_t ls = static_cast<int32_t>(l);
        int32_t rs = static_cast<int32_t>(r);
        switch (b->op) {
          case BinaryOp::Add: return l + r;
          case BinaryOp::Sub: return l - r;
          case BinaryOp::Mul: return l * r;
          case BinaryOp::Div:
            if (r == 0)
                fatalAt(e->loc, "division by zero");
            if (sgn) {
                if (l == 0x80000000u && r == 0xffffffffu)
                    return l;  // INT_MIN / -1 wraps
                return static_cast<uint32_t>(ls / rs);
            }
            return l / r;
          case BinaryOp::Rem:
            if (r == 0)
                fatalAt(e->loc, "remainder by zero");
            if (sgn) {
                if (l == 0x80000000u && r == 0xffffffffu)
                    return 0;
                return static_cast<uint32_t>(ls % rs);
            }
            return l % r;
          case BinaryOp::And: return l & r;
          case BinaryOp::Or: return l | r;
          case BinaryOp::Xor: return l ^ r;
          case BinaryOp::Shl: return l << (r & 31);
          case BinaryOp::Shr:
            if (b->lhs->type->isUnsignedInt())
                return l >> (r & 31);
            return static_cast<uint32_t>(ls >> (r & 31));
          case BinaryOp::Lt:
            return cmpSigned ? (ls < rs) : (l < r);
          case BinaryOp::Le:
            return cmpSigned ? (ls <= rs) : (l <= r);
          case BinaryOp::Gt:
            return cmpSigned ? (ls > rs) : (l > r);
          case BinaryOp::Ge:
            return cmpSigned ? (ls >= rs) : (l >= r);
          case BinaryOp::Eq: return l == r;
          case BinaryOp::Ne: return l != r;
          default: return 0;
        }
      }
      case ExprKind::Assign: {
        auto* a = static_cast<const AssignExpr*>(e);
        if (a->op == AssignOp::Assign) {
            // Evaluate RHS first, then the lvalue (single evaluation).
            uint32_t v = evalExpr(a->rhs, fr);
            LValue lv = evalLValue(a->lhs, fr);
            writeLValue(lv, v, fr);
            return v;
        }
        LValue lv = evalLValue(a->lhs, fr);
        uint32_t cur = readLValue(lv, fr);
        uint32_t rhs = evalExpr(a->rhs, fr);
        TypePtr lt = a->lhs->type;
        bool ptr = lt->isPointer();
        uint32_t stride =
            ptr ? static_cast<uint32_t>(pointeeSize(lt)) : 1;
        bool sgn = typeIsSigned(lt);
        int32_t cs = static_cast<int32_t>(cur);
        int32_t rsg = static_cast<int32_t>(rhs);
        uint32_t v = 0;
        switch (a->op) {
          case AssignOp::Add: v = cur + rhs * stride; break;
          case AssignOp::Sub: v = cur - rhs * stride; break;
          case AssignOp::Mul: v = cur * rhs; break;
          case AssignOp::Div:
            if (rhs == 0)
                fatalAt(e->loc, "division by zero");
            v = sgn ? static_cast<uint32_t>(cs / rsg) : cur / rhs;
            break;
          case AssignOp::Rem:
            if (rhs == 0)
                fatalAt(e->loc, "remainder by zero");
            v = sgn ? static_cast<uint32_t>(cs % rsg) : cur % rhs;
            break;
          case AssignOp::And: v = cur & rhs; break;
          case AssignOp::Or: v = cur | rhs; break;
          case AssignOp::Xor: v = cur ^ rhs; break;
          case AssignOp::Shl: v = cur << (rhs & 31); break;
          case AssignOp::Shr:
            v = sgn ? static_cast<uint32_t>(cs >> (rhs & 31))
                    : cur >> (rhs & 31);
            break;
          case AssignOp::Assign: break;
        }
        writeLValue(lv, v, fr);
        return v;
      }
      case ExprKind::Index:
      case ExprKind::Deref: {
        if (e->type->isArray()) {
            // Indexing into a multi-dim situation is unsupported;
            // arrays of arrays are not in Mini-C.
            fatalAt(e->loc, "array-typed access unsupported");
        }
        LValue lv = evalLValue(e, fr);
        return readLValue(lv, fr);
      }
      case ExprKind::AddrOf: {
        auto* a = static_cast<const AddrOfExpr*>(e);
        if (a->lvalue->kind == ExprKind::VarRef) {
            const VarDecl* d =
                static_cast<const VarRefExpr*>(a->lvalue)->decl;
            return objectAddress(d, fr);
        }
        LValue lv = evalLValue(a->lvalue, fr);
        CASH_ASSERT(!lv.isReg, "address of register value");
        return lv.addr;
      }
      case ExprKind::Call: {
        auto* c = static_cast<const CallExpr*>(e);
        std::vector<uint32_t> args;
        args.reserve(c->args.size());
        for (const Expr* a : c->args)
            args.push_back(evalExpr(a, fr));
        if (!c->decl->body)
            fatalAt(e->loc, "call to undefined function '" +
                                c->callee + "'");
        return callFunction(c->decl, args);
      }
      case ExprKind::Cast: {
        auto* c = static_cast<const CastExpr*>(e);
        uint32_t v = evalExpr(c->operand, fr);
        switch (c->target->kind) {
          case TypeKind::Char:
            return static_cast<uint32_t>(static_cast<int32_t>(
                static_cast<int8_t>(v & 0xff)));
          case TypeKind::UChar:
            return v & 0xff;
          default:
            return v;
        }
      }
      case ExprKind::Cond: {
        auto* c = static_cast<const CondExpr*>(e);
        return evalExpr(c->cond, fr) ? evalExpr(c->thenExpr, fr)
                                     : evalExpr(c->elseExpr, fr);
      }
      case ExprKind::IncDec: {
        auto* i = static_cast<const IncDecExpr*>(e);
        LValue lv = evalLValue(i->lvalue, fr);
        uint32_t cur = readLValue(lv, fr);
        TypePtr lt = i->lvalue->type;
        uint32_t stride = lt->isPointer()
                              ? static_cast<uint32_t>(pointeeSize(lt))
                              : 1;
        uint32_t next = i->isIncrement ? cur + stride : cur - stride;
        writeLValue(lv, next, fr);
        return i->isPrefix ? next : cur;
      }
    }
    return 0;
}

} // namespace cash
