# Empty dependencies file for bench_fig16_decoupling.
# This may be replaced when dependencies are built.
