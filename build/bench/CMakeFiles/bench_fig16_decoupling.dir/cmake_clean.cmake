file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_decoupling.dir/bench_fig16_decoupling.cpp.o"
  "CMakeFiles/bench_fig16_decoupling.dir/bench_fig16_decoupling.cpp.o.d"
  "bench_fig16_decoupling"
  "bench_fig16_decoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
