# Empty compiler generated dependencies file for bench_fig13_pipelining.
# This may be replaced when dependencies are built.
