file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_pipelining.dir/bench_fig13_pipelining.cpp.o"
  "CMakeFiles/bench_fig13_pipelining.dir/bench_fig13_pipelining.cpp.o.d"
  "bench_fig13_pipelining"
  "bench_fig13_pipelining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_pipelining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
