file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_memops.dir/bench_fig18_memops.cpp.o"
  "CMakeFiles/bench_fig18_memops.dir/bench_fig18_memops.cpp.o.d"
  "bench_fig18_memops"
  "bench_fig18_memops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_memops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
