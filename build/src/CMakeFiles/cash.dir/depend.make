# Empty dependencies file for cash.
# This may be replaced when dependencies are built.
