
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/boolean.cpp" "src/CMakeFiles/cash.dir/analysis/boolean.cpp.o" "gcc" "src/CMakeFiles/cash.dir/analysis/boolean.cpp.o.d"
  "/root/repo/src/analysis/induction.cpp" "src/CMakeFiles/cash.dir/analysis/induction.cpp.o" "gcc" "src/CMakeFiles/cash.dir/analysis/induction.cpp.o.d"
  "/root/repo/src/analysis/loop_rings.cpp" "src/CMakeFiles/cash.dir/analysis/loop_rings.cpp.o" "gcc" "src/CMakeFiles/cash.dir/analysis/loop_rings.cpp.o.d"
  "/root/repo/src/analysis/memloc.cpp" "src/CMakeFiles/cash.dir/analysis/memloc.cpp.o" "gcc" "src/CMakeFiles/cash.dir/analysis/memloc.cpp.o.d"
  "/root/repo/src/analysis/points_to.cpp" "src/CMakeFiles/cash.dir/analysis/points_to.cpp.o" "gcc" "src/CMakeFiles/cash.dir/analysis/points_to.cpp.o.d"
  "/root/repo/src/analysis/symbolic.cpp" "src/CMakeFiles/cash.dir/analysis/symbolic.cpp.o" "gcc" "src/CMakeFiles/cash.dir/analysis/symbolic.cpp.o.d"
  "/root/repo/src/baseline/interpreter.cpp" "src/CMakeFiles/cash.dir/baseline/interpreter.cpp.o" "gcc" "src/CMakeFiles/cash.dir/baseline/interpreter.cpp.o.d"
  "/root/repo/src/benchsuite/kernels.cpp" "src/CMakeFiles/cash.dir/benchsuite/kernels.cpp.o" "gcc" "src/CMakeFiles/cash.dir/benchsuite/kernels.cpp.o.d"
  "/root/repo/src/cfg/cfg.cpp" "src/CMakeFiles/cash.dir/cfg/cfg.cpp.o" "gcc" "src/CMakeFiles/cash.dir/cfg/cfg.cpp.o.d"
  "/root/repo/src/cfg/dominators.cpp" "src/CMakeFiles/cash.dir/cfg/dominators.cpp.o" "gcc" "src/CMakeFiles/cash.dir/cfg/dominators.cpp.o.d"
  "/root/repo/src/cfg/hyperblock.cpp" "src/CMakeFiles/cash.dir/cfg/hyperblock.cpp.o" "gcc" "src/CMakeFiles/cash.dir/cfg/hyperblock.cpp.o.d"
  "/root/repo/src/cfg/liveness.cpp" "src/CMakeFiles/cash.dir/cfg/liveness.cpp.o" "gcc" "src/CMakeFiles/cash.dir/cfg/liveness.cpp.o.d"
  "/root/repo/src/cfg/loops.cpp" "src/CMakeFiles/cash.dir/cfg/loops.cpp.o" "gcc" "src/CMakeFiles/cash.dir/cfg/loops.cpp.o.d"
  "/root/repo/src/cfg/lower.cpp" "src/CMakeFiles/cash.dir/cfg/lower.cpp.o" "gcc" "src/CMakeFiles/cash.dir/cfg/lower.cpp.o.d"
  "/root/repo/src/driver/compiler.cpp" "src/CMakeFiles/cash.dir/driver/compiler.cpp.o" "gcc" "src/CMakeFiles/cash.dir/driver/compiler.cpp.o.d"
  "/root/repo/src/frontend/ast.cpp" "src/CMakeFiles/cash.dir/frontend/ast.cpp.o" "gcc" "src/CMakeFiles/cash.dir/frontend/ast.cpp.o.d"
  "/root/repo/src/frontend/layout.cpp" "src/CMakeFiles/cash.dir/frontend/layout.cpp.o" "gcc" "src/CMakeFiles/cash.dir/frontend/layout.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/CMakeFiles/cash.dir/frontend/lexer.cpp.o" "gcc" "src/CMakeFiles/cash.dir/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/CMakeFiles/cash.dir/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/cash.dir/frontend/parser.cpp.o.d"
  "/root/repo/src/frontend/sema.cpp" "src/CMakeFiles/cash.dir/frontend/sema.cpp.o" "gcc" "src/CMakeFiles/cash.dir/frontend/sema.cpp.o.d"
  "/root/repo/src/opt/dead_code.cpp" "src/CMakeFiles/cash.dir/opt/dead_code.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/dead_code.cpp.o.d"
  "/root/repo/src/opt/dead_store.cpp" "src/CMakeFiles/cash.dir/opt/dead_store.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/dead_store.cpp.o.d"
  "/root/repo/src/opt/immutable_loads.cpp" "src/CMakeFiles/cash.dir/opt/immutable_loads.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/immutable_loads.cpp.o.d"
  "/root/repo/src/opt/loop_decoupling.cpp" "src/CMakeFiles/cash.dir/opt/loop_decoupling.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/loop_decoupling.cpp.o.d"
  "/root/repo/src/opt/loop_invariant.cpp" "src/CMakeFiles/cash.dir/opt/loop_invariant.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/loop_invariant.cpp.o.d"
  "/root/repo/src/opt/memory_merge.cpp" "src/CMakeFiles/cash.dir/opt/memory_merge.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/memory_merge.cpp.o.d"
  "/root/repo/src/opt/monotone_pipelining.cpp" "src/CMakeFiles/cash.dir/opt/monotone_pipelining.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/monotone_pipelining.cpp.o.d"
  "/root/repo/src/opt/opt_util.cpp" "src/CMakeFiles/cash.dir/opt/opt_util.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/opt_util.cpp.o.d"
  "/root/repo/src/opt/pass.cpp" "src/CMakeFiles/cash.dir/opt/pass.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/pass.cpp.o.d"
  "/root/repo/src/opt/readonly_split.cpp" "src/CMakeFiles/cash.dir/opt/readonly_split.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/readonly_split.cpp.o.d"
  "/root/repo/src/opt/ring_split.cpp" "src/CMakeFiles/cash.dir/opt/ring_split.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/ring_split.cpp.o.d"
  "/root/repo/src/opt/scalar_opts.cpp" "src/CMakeFiles/cash.dir/opt/scalar_opts.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/scalar_opts.cpp.o.d"
  "/root/repo/src/opt/store_forwarding.cpp" "src/CMakeFiles/cash.dir/opt/store_forwarding.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/store_forwarding.cpp.o.d"
  "/root/repo/src/opt/token_removal.cpp" "src/CMakeFiles/cash.dir/opt/token_removal.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/token_removal.cpp.o.d"
  "/root/repo/src/opt/transitive_reduction.cpp" "src/CMakeFiles/cash.dir/opt/transitive_reduction.cpp.o" "gcc" "src/CMakeFiles/cash.dir/opt/transitive_reduction.cpp.o.d"
  "/root/repo/src/pegasus/builder.cpp" "src/CMakeFiles/cash.dir/pegasus/builder.cpp.o" "gcc" "src/CMakeFiles/cash.dir/pegasus/builder.cpp.o.d"
  "/root/repo/src/pegasus/dot.cpp" "src/CMakeFiles/cash.dir/pegasus/dot.cpp.o" "gcc" "src/CMakeFiles/cash.dir/pegasus/dot.cpp.o.d"
  "/root/repo/src/pegasus/graph.cpp" "src/CMakeFiles/cash.dir/pegasus/graph.cpp.o" "gcc" "src/CMakeFiles/cash.dir/pegasus/graph.cpp.o.d"
  "/root/repo/src/pegasus/node.cpp" "src/CMakeFiles/cash.dir/pegasus/node.cpp.o" "gcc" "src/CMakeFiles/cash.dir/pegasus/node.cpp.o.d"
  "/root/repo/src/pegasus/reachability.cpp" "src/CMakeFiles/cash.dir/pegasus/reachability.cpp.o" "gcc" "src/CMakeFiles/cash.dir/pegasus/reachability.cpp.o.d"
  "/root/repo/src/pegasus/verifier.cpp" "src/CMakeFiles/cash.dir/pegasus/verifier.cpp.o" "gcc" "src/CMakeFiles/cash.dir/pegasus/verifier.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/cash.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/cash.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/dataflow_sim.cpp" "src/CMakeFiles/cash.dir/sim/dataflow_sim.cpp.o" "gcc" "src/CMakeFiles/cash.dir/sim/dataflow_sim.cpp.o.d"
  "/root/repo/src/sim/latency.cpp" "src/CMakeFiles/cash.dir/sim/latency.cpp.o" "gcc" "src/CMakeFiles/cash.dir/sim/latency.cpp.o.d"
  "/root/repo/src/sim/lsq.cpp" "src/CMakeFiles/cash.dir/sim/lsq.cpp.o" "gcc" "src/CMakeFiles/cash.dir/sim/lsq.cpp.o.d"
  "/root/repo/src/sim/memory_image.cpp" "src/CMakeFiles/cash.dir/sim/memory_image.cpp.o" "gcc" "src/CMakeFiles/cash.dir/sim/memory_image.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/CMakeFiles/cash.dir/sim/memory_system.cpp.o" "gcc" "src/CMakeFiles/cash.dir/sim/memory_system.cpp.o.d"
  "/root/repo/src/sim/tlb.cpp" "src/CMakeFiles/cash.dir/sim/tlb.cpp.o" "gcc" "src/CMakeFiles/cash.dir/sim/tlb.cpp.o.d"
  "/root/repo/src/sim/value.cpp" "src/CMakeFiles/cash.dir/sim/value.cpp.o" "gcc" "src/CMakeFiles/cash.dir/sim/value.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/cash.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/cash.dir/support/diagnostics.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/cash.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/cash.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/strings.cpp" "src/CMakeFiles/cash.dir/support/strings.cpp.o" "gcc" "src/CMakeFiles/cash.dir/support/strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
