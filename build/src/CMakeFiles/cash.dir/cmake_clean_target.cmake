file(REMOVE_RECURSE
  "libcash.a"
)
