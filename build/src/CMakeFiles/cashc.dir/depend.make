# Empty dependencies file for cashc.
# This may be replaced when dependencies are built.
