file(REMOVE_RECURSE
  "CMakeFiles/cashc.dir/driver/main.cpp.o"
  "CMakeFiles/cashc.dir/driver/main.cpp.o.d"
  "cashc"
  "cashc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cashc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
