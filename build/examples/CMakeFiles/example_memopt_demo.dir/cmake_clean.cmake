file(REMOVE_RECURSE
  "CMakeFiles/example_memopt_demo.dir/memopt_demo.cpp.o"
  "CMakeFiles/example_memopt_demo.dir/memopt_demo.cpp.o.d"
  "example_memopt_demo"
  "example_memopt_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_memopt_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
