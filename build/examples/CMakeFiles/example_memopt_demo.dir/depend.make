# Empty dependencies file for example_memopt_demo.
# This may be replaced when dependencies are built.
