file(REMOVE_RECURSE
  "CMakeFiles/example_loop_decoupling.dir/loop_decoupling.cpp.o"
  "CMakeFiles/example_loop_decoupling.dir/loop_decoupling.cpp.o.d"
  "example_loop_decoupling"
  "example_loop_decoupling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_loop_decoupling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
