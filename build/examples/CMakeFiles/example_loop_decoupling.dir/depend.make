# Empty dependencies file for example_loop_decoupling.
# This may be replaced when dependencies are built.
