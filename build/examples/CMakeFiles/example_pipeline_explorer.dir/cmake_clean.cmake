file(REMOVE_RECURSE
  "CMakeFiles/example_pipeline_explorer.dir/pipeline_explorer.cpp.o"
  "CMakeFiles/example_pipeline_explorer.dir/pipeline_explorer.cpp.o.d"
  "example_pipeline_explorer"
  "example_pipeline_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_pipeline_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
