# Empty compiler generated dependencies file for example_pipeline_explorer.
# This may be replaced when dependencies are built.
