
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_boolean.cpp" "tests/CMakeFiles/cash_tests.dir/test_boolean.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_boolean.cpp.o.d"
  "/root/repo/tests/test_builder.cpp" "tests/CMakeFiles/cash_tests.dir/test_builder.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_builder.cpp.o.d"
  "/root/repo/tests/test_cfg.cpp" "tests/CMakeFiles/cash_tests.dir/test_cfg.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_cfg.cpp.o.d"
  "/root/repo/tests/test_differential.cpp" "tests/CMakeFiles/cash_tests.dir/test_differential.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_differential.cpp.o.d"
  "/root/repo/tests/test_dominators.cpp" "tests/CMakeFiles/cash_tests.dir/test_dominators.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_dominators.cpp.o.d"
  "/root/repo/tests/test_end_to_end.cpp" "tests/CMakeFiles/cash_tests.dir/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_end_to_end.cpp.o.d"
  "/root/repo/tests/test_hyperblock.cpp" "tests/CMakeFiles/cash_tests.dir/test_hyperblock.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_hyperblock.cpp.o.d"
  "/root/repo/tests/test_interpreter.cpp" "tests/CMakeFiles/cash_tests.dir/test_interpreter.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_interpreter.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/cash_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_layout.cpp" "tests/CMakeFiles/cash_tests.dir/test_layout.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_layout.cpp.o.d"
  "/root/repo/tests/test_lexer.cpp" "tests/CMakeFiles/cash_tests.dir/test_lexer.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_lexer.cpp.o.d"
  "/root/repo/tests/test_memsystem.cpp" "tests/CMakeFiles/cash_tests.dir/test_memsystem.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_memsystem.cpp.o.d"
  "/root/repo/tests/test_opt_loops.cpp" "tests/CMakeFiles/cash_tests.dir/test_opt_loops.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_opt_loops.cpp.o.d"
  "/root/repo/tests/test_opt_memory.cpp" "tests/CMakeFiles/cash_tests.dir/test_opt_memory.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_opt_memory.cpp.o.d"
  "/root/repo/tests/test_opt_scalar.cpp" "tests/CMakeFiles/cash_tests.dir/test_opt_scalar.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_opt_scalar.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/cash_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_points_to.cpp" "tests/CMakeFiles/cash_tests.dir/test_points_to.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_points_to.cpp.o.d"
  "/root/repo/tests/test_sema.cpp" "tests/CMakeFiles/cash_tests.dir/test_sema.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_sema.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/cash_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/cash_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_symbolic.cpp" "tests/CMakeFiles/cash_tests.dir/test_symbolic.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_symbolic.cpp.o.d"
  "/root/repo/tests/test_verifier.cpp" "tests/CMakeFiles/cash_tests.dir/test_verifier.cpp.o" "gcc" "tests/CMakeFiles/cash_tests.dir/test_verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
