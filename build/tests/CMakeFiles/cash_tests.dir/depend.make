# Empty dependencies file for cash_tests.
# This may be replaced when dependencies are built.
