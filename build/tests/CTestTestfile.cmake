# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/cash_tests[1]_include.cmake")
add_test(cli.run "/root/repo/build/src/cashc" "-O" "full" "--run" "run(64)" "--mem" "real2" "/root/repo/examples/programs/dotproduct.c")
set_tests_properties(cli.run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli.dumps "/root/repo/build/src/cashc" "-O" "medium" "--dump-cfg" "--dump-graph" "--dot" "--stats" "/root/repo/examples/programs/dotproduct.c")
set_tests_properties(cli.dumps PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;36;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli.badfile "/root/repo/build/src/cashc" "/nonexistent.c")
set_tests_properties(cli.badfile PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;39;add_test;/root/repo/tests/CMakeLists.txt;0;")
