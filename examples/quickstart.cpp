/**
 * @file
 * Quickstart: compile a Mini-C program to a Pegasus spatial dataflow
 * graph, inspect it, and execute it on the spatial simulator.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart
 */
#include <cstdio>
#include <iostream>

#include "driver/compiler.h"
#include "pegasus/dot.h"
#include "sim/dataflow_sim.h"

using namespace cash;

int
main()
{
    // 1. A Mini-C program: dot-product of two global vectors.
    const char* source = R"(
int xs[256];
int ys[256];

int dot(int* a, int* b, int n)
{
    #pragma independent a b
    int acc = 0;
    int i;
    for (i = 0; i < n; i++)
        acc += a[i] * b[i];
    return acc;
}

int run(int n)
{
    int i;
    for (i = 0; i < n; i++) {
        xs[i] = i + 1;
        ys[i] = 2 * i + 1;
    }
    return dot(xs, ys, n);
}
)";

    // 2. Compile through the whole CASH pipeline.
    CompileResult r = compileSource(
        source, CompileOptions().opt(OptLevel::Full));

    std::printf("compiled %zu functions; %lld Pegasus nodes, "
                "%lld loads, %lld stores\n",
                r.graphs.size(),
                static_cast<long long>(r.totalNodes()),
                static_cast<long long>(r.staticLoads()),
                static_cast<long long>(r.staticStores()));

    // 3. Inspect the spatial circuit of `dot` (Graphviz).
    std::printf("\n--- dot(a, b, n) as a Pegasus graph "
                "(pipe into `dot -Tpdf`) ---\n%s\n",
                toDot(*r.graph("dot")).c_str());

    // 4. Execute on the simulated spatial fabric with the paper's
    //    realistic dual-ported memory system.
    DataflowSimulator sim(r.graphPtrs(), *r.layout,
                          MemConfig::realistic(2));
    SimResult out = sim.run("run", {128});
    std::printf("run(128) = %u in %llu cycles\n", out.returnValue,
                static_cast<unsigned long long>(out.cycles));
    std::printf("dynamic loads=%lld stores=%lld, L1 misses=%lld\n",
                static_cast<long long>(out.stats.get("sim.dynLoads")),
                static_cast<long long>(out.stats.get("sim.dynStores")),
                static_cast<long long>(
                    out.stats.get("sim.mem.l1.misses")));

    // 5. The same program under perfect memory, for comparison.
    DataflowSimulator ideal(r.graphPtrs(), *r.layout,
                            MemConfig::perfectMemory());
    SimResult best = ideal.run("run", {128});
    std::printf("perfect memory: %llu cycles\n",
                static_cast<unsigned long long>(best.cycles));
    return 0;
}
