/**
 * @file
 * Walks through the paper's §2 motivating example, showing the
 * optimization steps of Figure 1: token-edge removal by address
 * disambiguation (A→B), load-after-store forwarding through a mux
 * (B→C), and store-before-store elimination (C→D).
 */
#include <cstdio>

#include "benchsuite/kernels.h"
#include "driver/compiler.h"
#include "pegasus/dot.h"
#include "sim/dataflow_sim.h"

using namespace cash;

namespace {

void
census(const CompileResult& r, const char* when)
{
    const Graph* g = r.graph("f");
    int loads = 0, stores = 0, muxes = 0, combines = 0;
    g->forEach([&](Node* n) {
        switch (n->kind) {
          case NodeKind::Load: loads++; break;
          case NodeKind::Store: stores++; break;
          case NodeKind::Mux: muxes++; break;
          case NodeKind::Combine: combines++; break;
          default: break;
        }
    });
    std::printf("%-38s loads=%d stores=%d muxes=%d combines=%d\n",
                when, loads, stores, muxes, combines);
}

} // namespace

int
main()
{
    std::printf(
        "The paper's motivating example (Section 2):\n\n"
        "    void f(unsigned* p, unsigned a[], int i) {\n"
        "        if (p) a[i] += *p;\n"
        "        else   a[i] = 1;\n"
        "        a[i] <<= a[i+1];\n"
        "    }\n\n"
        "a[i] is used as a temporary; the intermediate stores and the\n"
        "re-load of a[i] are redundant.  Of seven production compilers\n"
        "the paper tested, only CASH and IBM's AIX cc removed all "
        "three.\n\n");

    std::string src = section2ExampleSource();

    CompileResult a =
        compileSource(src, CompileOptions().opt(OptLevel::None));
    census(a, "Figure 1A (program-order tokens):");

    CompileResult b =
        compileSource(src, CompileOptions().opt(OptLevel::Medium));
    census(b, "Figure 1B (a[i] / a[i+1] disambiguated):");

    CompileResult d =
        compileSource(src, CompileOptions().opt(OptLevel::Full));
    census(d, "Figure 1D (forwarding + dead stores):");

    std::printf(
        "\nIn the final graph the two conditional stores are gone: "
        "their values meet at\na decoded multiplexor (controlled by "
        "the stores' predicates, exactly Figure 1C)\nthat feeds the "
        "single remaining store for `a[i] <<= a[i+1]`.\n\n");

    std::printf("--- final Pegasus graph of f (Graphviz) ---\n%s\n",
                toDot(*d.graph("f")).c_str());

    // Execute both control paths to show the rewrite is functional.
    for (uint32_t useNull : {0u, 1u}) {
        DataflowSimulator sim(d.graphPtrs(), *d.layout,
                              MemConfig::perfectMemory());
        SimResult out = sim.run("memopt_run", {useNull});
        std::printf("memopt_run(%u) = %u  (%llu cycles)\n", useNull,
                    out.returnValue,
                    static_cast<unsigned long long>(out.cycles));
    }
    return 0;
}
