/* Sample program for the cashc command-line driver. */
int xs[256];
int ys[256];

int dot(int* a, int* b, int n)
{
    #pragma independent a b
    int acc = 0;
    int i;
    for (i = 0; i < n; i++)
        acc += a[i] * b[i];
    return acc;
}

int run(int n)
{
    int i;
    for (i = 0; i < n; i++) {
        xs[i] = i + 1;
        ys[i] = 2 * i + 1;
    }
    return dot(xs, ys, n);
}
