/**
 * @file
 * Demonstrates loop decoupling (§6.3, Figures 15-17): the distance-3
 * recurrence
 *
 *     for (i = 0; i+3 < n; i++)
 *         a[i+3] = (a[i] + a[i+3]) >> 1;
 *
 * is sliced so the a[i] reads may run up to three iterations ahead of
 * the a[i+3] writes, with a token generator tk(3) bounding the slip at
 * run time.
 */
#include <cstdio>

#include "benchsuite/kernels.h"
#include "driver/compiler.h"
#include "pegasus/dot.h"
#include "sim/dataflow_sim.h"

using namespace cash;

int
main()
{
    std::string src = decouplingExampleSource();

    std::printf("Loop decoupling on the distance-3 stencil "
                "(paper §6.3):\n\n");

    CompileResult rm =
        compileSource(src, CompileOptions().opt(OptLevel::Medium));
    CompileResult rf =
        compileSource(src, CompileOptions().opt(OptLevel::Full));

    // Count the token generators the transformation inserted.
    int tokengens = 0;
    rf.graph("stencil")->forEach([&](Node* n) {
        if (n->kind == NodeKind::TokenGen) {
            std::printf("  inserted tk(%d): slip bound between the "
                        "a[i] read and the a[i+3] write\n",
                        n->tkCount);
            tokengens++;
        }
    });
    if (!tokengens)
        std::printf("  (no token generator inserted — check "
                    "optimization pipeline)\n");

    for (int ports : {1, 2, 4}) {
        MemConfig mem = MemConfig::realistic(ports);
        DataflowSimulator simM(rm.graphPtrs(), *rm.layout, mem);
        SimResult m = simM.run("stencil_run", {4096});
        DataflowSimulator simF(rf.graphPtrs(), *rf.layout, mem);
        SimResult f = simF.run("stencil_run", {4096});
        std::printf("%d-port memory: serialized ring %8llu cycles | "
                    "decoupled %8llu cycles | %.2fx\n",
                    ports, static_cast<unsigned long long>(m.cycles),
                    static_cast<unsigned long long>(f.cycles),
                    static_cast<double>(m.cycles) /
                        static_cast<double>(f.cycles));
        if (m.returnValue != f.returnValue) {
            std::printf("MISMATCH: %u vs %u\n", m.returnValue,
                        f.returnValue);
            return 1;
        }
    }

    std::printf("\nThe token generator emits its %d initial tokens "
                "immediately, so the read\nloop starts %d iterations "
                "ahead; afterwards each write completion releases\n"
                "one more read.  The leading loop may slip arbitrarily "
                "far ahead (surplus\ntokens accumulate in the "
                "generator's counter).\n",
                3, 3);
    return 0;
}
