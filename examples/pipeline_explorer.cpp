/**
 * @file
 * Explores how memory-system parameters interact with the compiler's
 * pipelining (§7.3): sweeps LSQ ports, cache sizes and optimization
 * levels over a streaming kernel and prints a cycle/bandwidth matrix.
 *
 *   usage: example_pipeline_explorer [kernel] [n]
 */
#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchsuite/kernels.h"
#include "driver/compiler.h"
#include "sim/dataflow_sim.h"

using namespace cash;

int
main(int argc, char** argv)
{
    std::string name = argc > 1 ? argv[1] : "saxpy";
    const Kernel& k = kernelByName(name);
    std::vector<uint32_t> args = k.args;
    if (argc > 2)
        args[0] = static_cast<uint32_t>(std::atoi(argv[2]));

    std::printf("pipeline explorer: kernel '%s' (%s)\n\n", name.c_str(),
                k.description.c_str());

    struct LevelRow
    {
        const char* name;
        OptLevel level;
    };
    const LevelRow levels[] = {
        {"none", OptLevel::None},
        {"medium", OptLevel::Medium},
        {"full", OptLevel::Full},
    };

    std::printf("%-8s %-12s %10s %10s %10s %10s\n", "opt", "memory",
                "cycles", "dynLoads", "l1miss", "portStall");
    for (const LevelRow& lvl : levels) {
        CompileResult r =
            compileSource(k.source, CompileOptions().opt(lvl.level));
        for (int ports : {1, 2, 4, 8}) {
            MemConfig mem = MemConfig::realistic(ports);
            DataflowSimulator sim(r.graphPtrs(), *r.layout, mem);
            SimResult out = sim.run(k.entry, args);
            std::printf("%-8s %-12s %10llu %10lld %10lld %10lld\n",
                        lvl.name, mem.name.c_str(),
                        static_cast<unsigned long long>(out.cycles),
                        static_cast<long long>(
                            out.stats.get("sim.dynLoads")),
                        static_cast<long long>(
                            out.stats.get("sim.mem.l1.misses")),
                        static_cast<long long>(
                            out.stats.get("sim.mem.lsq.portStalls")));
        }
        // Perfect memory bound.
        DataflowSimulator ideal(r.graphPtrs(), *r.layout,
                                MemConfig::perfectMemory());
        SimResult best = ideal.run(k.entry, args);
        std::printf("%-8s %-12s %10llu\n", lvl.name, "perfect",
                    static_cast<unsigned long long>(best.cycles));
    }

    std::printf("\nReading the matrix: unoptimized spatial code "
                "serializes memory operations\nthrough one token "
                "chain, so extra ports are wasted; after pipelining, "
                "cycles\ntrack available bandwidth — the paper's "
                "\"even small amounts of bandwidth can\nbe utilized "
                "quite effectively\".\n");
    return 0;
}
